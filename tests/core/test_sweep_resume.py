"""The acceptance scenario for the crash-safe sweep store: kill a
sweep mid-run (self-SIGTERM after N commits, plus an injected worker
death and a corrupted cell on resume) and assert the resumed merge is
**byte-identical** to an uninterrupted serial run, with reused cells
> 0 and no hung worker processes left behind.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.core import (
    FaultInjection,
    ResultStore,
    SerialExecutor,
    SweepJournal,
    result_fingerprint,
    run_sharded_experiment,
    run_stored_sweep,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config

DOMAINS = 12
FILLER = 150
SHARDS = 3
SEEDS = (2016, 2017, 2018)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _inputs(seed):
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=seed
    )
    names = standard_workload(DOMAINS, seed=seed).names(DOMAINS)
    return factory, names


def _reference(seed):
    """The uninterrupted serial run everything must match."""
    factory, names = _inputs(seed)
    return run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=SHARDS,
        executor=SerialExecutor(),
    )


CHILD_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.core import ResultStore, run_stored_sweep
    from repro.core import standard_universe_factory, standard_workload
    from repro.resolver import correct_bind_config

    root, seed, abort_after = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    domains, filler, shards = {domains}, {filler}, {shards}
    factory = standard_universe_factory(
        domains, filler_count=filler, workload_seed=seed
    )
    names = standard_workload(domains, seed=seed).names(domains)
    store = ResultStore(root, abort_after_commits=abort_after)
    run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=shards,
        store=store,
    )
    # Reaching here means the SIGTERM injection never fired.
    sys.exit(7)
    """
).format(domains=DOMAINS, filler=FILLER, shards=SHARDS)


def _run_child_sweep(root, seed, abort_after):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT, str(root), str(seed),
         str(abort_after)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_interrupted_sweep_resumes_byte_identical(tmp_path, seed):
    """SIGTERM mid-sweep → resume (with a corrupted cell and, where
    fork exists, an injected one-shot worker crash) → identical merge."""
    store_root = tmp_path / "store"

    # 1. A child process runs the stored sweep and self-SIGTERMs after
    #    its second cell commit — a genuine mid-run kill.
    child = _run_child_sweep(store_root, seed, abort_after=2)
    assert child.returncode == -signal.SIGTERM, (
        child.returncode,
        child.stdout,
        child.stderr,
    )
    committed = list(store_root.glob("*/*.cell"))
    assert len(committed) == 2  # died after the 2nd commit, before the 3rd

    # 2. One of the surviving cells gets silently corrupted on disk.
    victim = sorted(committed)[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))

    # 3. Resume in-process.  Where fork is available, also inject a
    #    one-shot worker crash into shard 2 — the child ran serially,
    #    so shard 2 was never committed and must re-run — making the
    #    resume exercise retry-after-worker-loss too.
    factory, names = _inputs(seed)
    injection = None
    if HAVE_FORK:
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        injection = FaultInjection(
            marker_dir=str(marker_dir), crash_once_cells=frozenset({2})
        )
    journal = SweepJournal(tmp_path / "journal.jsonl")
    outcome = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=SHARDS,
        store=ResultStore(store_root),
        journal=journal,
        injection=injection,
        retries=2,
        backoff_base=0.01,
    )

    # 4. Byte-identity with the uninterrupted serial reference.
    outcome.raise_if_incomplete()
    assert outcome.quarantined == []
    assert result_fingerprint(outcome.result) == result_fingerprint(
        _reference(seed)
    )

    # 5. The resume reused the surviving cell, re-ran the corrupted and
    #    never-committed ones.
    assert outcome.cells_total == SHARDS
    assert outcome.cells_reused == 1
    assert outcome.cells_rerun == 2
    assert outcome.store_stats.corrupt_detected == 1
    if injection is not None:
        assert outcome.health.worker_lost == 1
        assert outcome.health.retries == 1

    # 6. The journal tells the story, and no workers were left behind.
    events = [event["event"] for event in journal.events()]
    assert events[0] == "sweep-start"
    assert events[-1] == "sweep-end"
    assert "reuse" in events and "corrupt" in events
    for child_process in multiprocessing.active_children():
        child_process.join(timeout=5)
    assert multiprocessing.active_children() == []


def test_second_resume_is_pure_reuse(tmp_path):
    """After a completed stored sweep, running again re-runs nothing
    and still fingerprints identically."""
    seed = SEEDS[0]
    store_root = tmp_path / "store"
    factory, names = _inputs(seed)

    def sweep():
        return run_stored_sweep(
            factory,
            correct_bind_config(),
            names,
            seed=seed,
            shards=SHARDS,
            store=ResultStore(store_root),
        )

    first = sweep()
    second = sweep()
    assert second.cells_reused == SHARDS and second.cells_rerun == 0
    assert result_fingerprint(second.result) == result_fingerprint(
        first.result
    )
    assert result_fingerprint(second.result) == result_fingerprint(
        _reference(seed)
    )


def test_stored_sweep_quarantine_keeps_going(tmp_path):
    """A poison cell (injected crash with no retries) is quarantined;
    the healthy cells complete and the outcome reports incompleteness
    instead of hanging or crashing the parent."""
    if not HAVE_FORK:
        pytest.skip("needs fork start method")
    seed = SEEDS[0]
    factory, names = _inputs(seed)
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    # Crash cell 1 on every attempt: pre-create the marker's namesake
    # via retries=0 so the single attempt dies and quarantine kicks in.
    injection = FaultInjection(
        marker_dir=str(marker_dir), crash_once_cells=frozenset({1})
    )
    outcome = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=SHARDS,
        store=ResultStore(tmp_path / "store"),
        injection=injection,
        retries=0,
    )
    assert not outcome.complete
    assert len(outcome.quarantined) == 1
    assert outcome.quarantined[0].error == "worker-lost"
    assert outcome.cells_rerun == SHARDS - 1
    with pytest.raises(RuntimeError):
        outcome.raise_if_incomplete()
    # A follow-up run (the marker now exists, so the crash is spent)
    # heals the hole and matches the serial reference.
    healed = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=SHARDS,
        store=ResultStore(tmp_path / "store"),
        injection=injection,
        retries=0,
    )
    assert healed.complete
    assert healed.cells_reused == SHARDS - 1
    assert result_fingerprint(healed.result) == result_fingerprint(
        _reference(seed)
    )
