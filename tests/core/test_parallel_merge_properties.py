"""Property-based checks of the merge algebra in ``repro.core.parallel``.

The sharded runner's whole safety argument is algebraic: the binary
merges are associative with the empty value as identity, and the
shard-level fold is invariant to the order results arrive in.  These
laws are what let ``merge_shard_results`` re-sort by shard index and
fold, regardless of worker scheduling.  Hypothesis probes them over
synthetic reports and results.

Floats are drawn dyadic (multiples of 1/1024) so sums are exact and
associativity can be asserted with ``==`` rather than tolerances.
"""

import dataclasses
from typing import Optional

from hypothesis import given, strategies as st

from repro.core import (
    derive_subseed,
    empty_leakage_report,
    empty_metrics_snapshot,
    empty_overhead,
    empty_result,
    merge_leakage_reports,
    merge_metrics_snapshots,
    merge_overhead,
    merge_results,
    merge_shard_results,
    plan_shards,
    renumber_traces,
    result_fingerprint,
)
from repro.core.experiment import ExperimentResult, _CaptureSlice
from repro.core.leakage import LeakageReport
from repro.core.overhead import OverheadMetrics
from repro.core.tracing import Span
from repro.dnscore import Name, RRType


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

# Multiples of 1/1024: float addition over these is exact, so the
# associativity laws hold bit for bit, not just approximately.
dyadic = st.integers(min_value=0, max_value=1 << 20).map(lambda k: k / 1024.0)

counts = st.integers(min_value=0, max_value=100)

names = st.integers(min_value=0, max_value=40).map(
    lambda i: Name.from_text(f"domain-{i}.example.")
)

name_sets = st.sets(names, max_size=6)

leakage_reports = st.builds(
    LeakageReport,
    domains_queried=counts,
    dlv_queries=counts,
    case1_queries=counts,
    case2_queries=counts,
    leaked_domains=name_sets,
    served_domains=name_sets,
    tld_level_queries=counts,
    noerror_responses=counts,
    nxdomain_responses=counts,
)

overheads = st.builds(
    OverheadMetrics,
    response_time=dyadic,
    traffic_bytes=st.integers(min_value=0, max_value=10**9),
    queries_issued=counts,
    query_type_counts=st.dictionaries(
        st.sampled_from([RRType.A, RRType.AAAA, RRType.DLV, RRType.TXT]),
        st.integers(min_value=1, max_value=50),
        max_size=4,
    ),
)


@st.composite
def histogram_stats(draw):
    """One internally consistent histogram entry (mean == sum/count),
    as a real MetricsRegistry snapshot would produce."""
    count = draw(st.integers(min_value=1, max_value=20))
    values = draw(
        st.lists(dyadic, min_size=count, max_size=count)
    )
    total = sum(values)
    return {
        "count": count,
        "sum": total,
        "min": min(values),
        "max": max(values),
        "mean": total / count,
    }


metric_names = st.sampled_from(
    ["resolver.queries", "dlv.lookups", "cache.hits", "stub.rtt"]
)

snapshots = st.one_of(
    st.none(),
    st.builds(
        lambda counters, histograms: {
            "counters": counters,
            "histograms": histograms,
        },
        counters=st.dictionaries(metric_names, counts, max_size=3),
        histograms=st.dictionaries(metric_names, histogram_stats(), max_size=3),
    ),
)


@dataclasses.dataclass(frozen=True)
class FakeRecord:
    """The capture-record surface ``result_fingerprint`` reads."""

    time: float
    src: str
    dst: str
    wire_size: int
    dropped: bool
    qname: Optional[Name] = None
    qtype: Optional[RRType] = None
    is_query: bool = False


records = st.builds(
    FakeRecord,
    time=dyadic,
    src=st.sampled_from(["10.0.0.1", "10.0.0.2"]),
    dst=st.sampled_from(["192.0.2.1", "192.0.2.53"]),
    wire_size=st.integers(min_value=12, max_value=512),
    dropped=st.booleans(),
)


@st.composite
def span_trees(draw, span_id_base=1000):
    leaf_count = draw(st.integers(min_value=0, max_value=2))
    start = draw(dyadic)
    children = [
        Span(
            trace_id=0,
            span_id=span_id_base + 1 + child,
            parent_id=span_id_base,
            name=f"child-{child}",
            start=start,
            end=start + draw(dyadic),
        )
        for child in range(leaf_count)
    ]
    return Span(
        trace_id=0,
        span_id=span_id_base,
        parent_id=None,
        name=draw(st.sampled_from(["resolve", "dlv-lookup", "stub-query"])),
        start=start,
        end=start + draw(dyadic),
        attrs={"qname": draw(st.sampled_from(["a.example.", "b.example."]))},
        children=children,
    )


@st.composite
def experiment_results(draw):
    name_list = draw(st.lists(names, max_size=4))
    trace_list = renumber_traces(draw(st.lists(span_trees(), max_size=3)))
    record_list = draw(st.lists(records, max_size=4))
    return ExperimentResult(
        names=name_list,
        leakage=draw(leakage_reports),
        overhead=draw(overheads),
        status_counts=draw(st.dictionaries(
            st.sampled_from(["ok", "servfail", "timeout"]), counts, max_size=3
        )),
        rcode_counts=draw(st.dictionaries(
            st.sampled_from(["NOERROR", "NXDOMAIN", "SERVFAIL"]),
            counts,
            max_size=3,
        )),
        authenticated_answers=draw(counts),
        capture=_CaptureSlice(record_list) if record_list else None,
        traces=trace_list,
        metrics=draw(snapshots),
    )


# ----------------------------------------------------------------------
# Leakage-report laws
# ----------------------------------------------------------------------

@given(leakage_reports, leakage_reports, leakage_reports)
def test_leakage_merge_is_associative(a, b, c):
    left = merge_leakage_reports(merge_leakage_reports(a, b), c)
    right = merge_leakage_reports(a, merge_leakage_reports(b, c))
    assert left == right


@given(leakage_reports, leakage_reports)
def test_leakage_merge_is_commutative(a, b):
    assert merge_leakage_reports(a, b) == merge_leakage_reports(b, a)


@given(leakage_reports)
def test_empty_leakage_report_is_identity(a):
    assert merge_leakage_reports(empty_leakage_report(), a) == a
    assert merge_leakage_reports(a, empty_leakage_report()) == a


# ----------------------------------------------------------------------
# Overhead laws
# ----------------------------------------------------------------------

@given(overheads, overheads, overheads)
def test_overhead_merge_is_associative(a, b, c):
    left = merge_overhead(merge_overhead(a, b), c)
    right = merge_overhead(a, merge_overhead(b, c))
    assert left == right


@given(overheads, overheads)
def test_overhead_merge_is_commutative(a, b):
    assert merge_overhead(a, b) == merge_overhead(b, a)


@given(overheads)
def test_empty_overhead_is_identity(a):
    assert merge_overhead(empty_overhead(), a) == a
    assert merge_overhead(a, empty_overhead()) == a


# ----------------------------------------------------------------------
# Metrics-snapshot laws
# ----------------------------------------------------------------------

@given(snapshots, snapshots, snapshots)
def test_snapshot_merge_is_associative(a, b, c):
    left = merge_metrics_snapshots(merge_metrics_snapshots(a, b), c)
    right = merge_metrics_snapshots(a, merge_metrics_snapshots(b, c))
    assert left == right


@given(snapshots, snapshots)
def test_snapshot_merge_is_commutative(a, b):
    assert merge_metrics_snapshots(a, b) == merge_metrics_snapshots(b, a)


@given(snapshots)
def test_none_and_empty_snapshot_are_identities(a):
    assert merge_metrics_snapshots(None, a) == a
    assert merge_metrics_snapshots(a, None) == a
    if a is not None:
        assert merge_metrics_snapshots(empty_metrics_snapshot(), a) == a
        assert merge_metrics_snapshots(a, empty_metrics_snapshot()) == a


def test_two_none_snapshots_stay_none():
    assert merge_metrics_snapshots(None, None) is None


# ----------------------------------------------------------------------
# Full-result laws (compared through the canonical fingerprint, since
# capture slices have no structural equality of their own)
# ----------------------------------------------------------------------

@given(experiment_results(), experiment_results(), experiment_results())
def test_result_merge_is_associative(a, b, c):
    left = merge_results(merge_results(a, b), c)
    right = merge_results(a, merge_results(b, c))
    assert result_fingerprint(left) == result_fingerprint(right)


@given(experiment_results())
def test_empty_result_is_identity(a):
    assert result_fingerprint(merge_results(empty_result(), a)) == (
        result_fingerprint(a)
    )
    assert result_fingerprint(merge_results(a, empty_result())) == (
        result_fingerprint(a)
    )


@given(
    st.lists(experiment_results(), min_size=1, max_size=4).flatmap(
        lambda results: st.permutations(list(enumerate(results))).map(
            lambda shuffled: (results, shuffled)
        )
    )
)
def test_shard_merge_is_invariant_to_arrival_order(case):
    results, shuffled = case
    reference = merge_shard_results(list(enumerate(results)))
    permuted = merge_shard_results(shuffled)
    assert result_fingerprint(permuted) == result_fingerprint(reference)


# ----------------------------------------------------------------------
# Shard-plan and sub-seed properties
# ----------------------------------------------------------------------

@given(
    st.lists(names, max_size=30),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**31),
)
def test_plan_shards_partitions_exactly(name_list, shard_count, seed):
    plan = plan_shards(name_list, shard_count, seed)
    assert len(plan) == shard_count
    flattened = [name for spec in plan for name in spec.names]
    assert flattened == list(name_list)
    sizes = [len(spec.names) for spec in plan]
    assert max(sizes) - min(sizes) <= 1
    assert plan == plan_shards(name_list, shard_count, seed)


@given(
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=0, max_value=64),
)
def test_subseeds_are_stable_and_in_range(seed, index):
    subseed = derive_subseed(seed, index)
    assert 0 <= subseed < 2**63
    assert subseed == derive_subseed(seed, index)


def test_subseed_known_values_are_pinned():
    """Platform-stability canary: these exact values must never change,
    or every golden file and equivalence baseline silently shifts."""
    assert derive_subseed(2016, 0) == 1326810371180802627
    assert derive_subseed(2016, 1) == 1590822275688151144
    assert derive_subseed(2016, 2) == 58384938868960578
