"""Chaos replay: availability monoid laws, load semantics, equivalence.

Three contracts certify the concurrent chaos driver:

* **Availability-extended monoid** — the new :class:`ReplayWindow`
  counters (servfails, timeouts, retries, stale_served, admission
  counts) and the mergeable latency histogram obey the same laws as the
  original fields: associative + commutative merge, identity element,
  and the window fold reproducing the overall totals.
* **``load=1`` byte-identity** — routing a chaos or adversary cell
  through the scheduler as a single session reproduces the serial
  cell's result fingerprint *and* trace JSONL for every fault plan and
  every byzantine persona.  This is what licenses reading the
  ``load>1`` curves as "the same experiment, busier".
* **Determinism + shedding** — same universe/config/load ⇒ same
  :func:`chaos_replay_fingerprint`; a bounded admission queue sheds
  arrivals without losing accounting (every budgeted query is either
  answered, failed, or counted as shed).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    LATENCY_BUCKET_BOUNDS,
    ReplayLoad,
    ReplayWindow,
    chaos_replay_fingerprint,
    coerce_load,
    deploy_poisoner,
    deploy_referral_bomber,
    deploy_sig_bomber,
    deploy_spoofer,
    empty_latency_buckets,
    empty_replay_window,
    export_traces_jsonl,
    fold_windows,
    latency_bucket_index,
    latency_quantile,
    merge_latency_buckets,
    merge_replay_windows,
    registry_outage_scenario,
    result_fingerprint,
    run_adversary_cell,
    run_chaos_cell,
    run_chaos_replay,
    schedule_brownout,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RCode
from repro.resolver import DlvOutagePolicy, correct_bind_config

WORKLOAD_SEED = 43
DOMAINS = 20
FILLER = 60

SMALL_LOAD = ReplayLoad(
    users=4,
    per_user_qps=0.05,
    queries=100,
    window_seconds=200.0,
    max_concurrent=16,
    seed=5,
)


def make_universe():
    workload = standard_workload(DOMAINS, seed=WORKLOAD_SEED)
    return standard_universe(workload, filler_count=FILLER, seed=WORKLOAD_SEED)


def experiment_names():
    return [
        spec.name
        for spec in standard_workload(DOMAINS, seed=WORKLOAD_SEED).domains
    ]


# ----------------------------------------------------------------------
# Latency histogram primitives
# ----------------------------------------------------------------------


def test_bucket_index_maps_bounds_inclusively():
    assert latency_bucket_index(0.0) == 0
    assert latency_bucket_index(LATENCY_BUCKET_BOUNDS[0]) == 0
    for i, bound in enumerate(LATENCY_BUCKET_BOUNDS):
        assert latency_bucket_index(bound) == i
    # Beyond the last bound clamps into the last (overflow) bucket.
    assert (
        latency_bucket_index(LATENCY_BUCKET_BOUNDS[-1] * 10)
        == len(LATENCY_BUCKET_BOUNDS) - 1
    )


def test_latency_quantile_picks_bucket_upper_bounds():
    buckets = list(empty_latency_buckets())
    buckets[latency_bucket_index(0.004)] = 98
    buckets[latency_bucket_index(3.0)] = 2
    buckets = tuple(buckets)
    assert latency_quantile(buckets, 0.50) == 0.005
    assert latency_quantile(buckets, 0.99) == 5.0
    assert latency_quantile((), 0.99) == 0.0
    assert latency_quantile(empty_latency_buckets(), 0.5) == 0.0


bucket_tuples = st.lists(
    st.integers(min_value=0, max_value=500),
    min_size=0,
    max_size=len(LATENCY_BUCKET_BOUNDS),
).map(tuple)


@settings(max_examples=60, deadline=None)
@given(a=bucket_tuples, b=bucket_tuples, c=bucket_tuples)
def test_bucket_merge_is_associative_commutative_with_identity(a, b, c):
    merge = merge_latency_buckets
    assert merge(merge(a, b), c) == merge(a, merge(b, c))
    # Commutative up to zero-padding: compare padded forms.
    assert merge(a, b) == merge(b, a)
    assert merge((), a) == merge(a, ())
    assert sum(merge((), a)) == sum(a)


@settings(max_examples=40, deadline=None)
@given(a=bucket_tuples, b=bucket_tuples)
def test_bucket_merge_is_exact(a, b):
    """Histogram merge loses nothing: totals add and quantiles of the
    merge are bounded by the max of the inputs' quantiles."""
    merged = merge_latency_buckets(a, b)
    assert sum(merged) == sum(a) + sum(b)
    if sum(a) and sum(b):
        for q in (0.5, 0.9, 0.99):
            assert latency_quantile(merged, q) <= max(
                latency_quantile(a, q), latency_quantile(b, q)
            ) or latency_quantile(merged, q) in (
                latency_quantile(a, q),
                latency_quantile(b, q),
            )


# ----------------------------------------------------------------------
# Availability-extended monoid laws
# ----------------------------------------------------------------------

dyadic = st.integers(min_value=0, max_value=1 << 16).map(lambda k: k / 256.0)
counts = st.integers(min_value=0, max_value=1000)
domains = st.frozensets(
    st.sampled_from(["a.com", "b.net", "c.org", "d.io", "e.de"]), max_size=5
)


@st.composite
def availability_windows(draw):
    start = draw(dyadic)
    return ReplayWindow(
        start=start,
        end=start + draw(dyadic),
        queries=draw(counts),
        failures=draw(counts),
        dlv_queries=draw(counts),
        case1_queries=draw(counts),
        case2_queries=draw(counts),
        leaked_domains=draw(domains),
        cache_hits=draw(counts),
        cache_misses=draw(counts),
        packets=draw(counts),
        wire_bytes=draw(counts),
        dropped=draw(counts),
        latency_sum=draw(dyadic),
        latency_max=draw(dyadic),
        sessions_started=draw(counts),
        sessions_completed=draw(counts),
        servfails=draw(counts),
        timeouts=draw(counts),
        retries=draw(counts),
        stale_served=draw(counts),
        admission_queued=draw(counts),
        admission_rejected=draw(counts),
        latency_buckets=draw(bucket_tuples),
    )


@settings(max_examples=80, deadline=None)
@given(a=availability_windows(), b=availability_windows(), c=availability_windows())
def test_extended_merge_is_associative_and_commutative(a, b, c):
    merge = merge_replay_windows
    assert merge(merge(a, b), c) == merge(a, merge(b, c))
    assert merge(a, b) == merge(b, a)


@settings(max_examples=40, deadline=None)
@given(w=availability_windows())
def test_empty_window_is_identity_for_extended_fields(w):
    empty = empty_replay_window()
    assert merge_replay_windows(empty, w) == w
    assert merge_replay_windows(w, empty) == w


@settings(max_examples=40, deadline=None)
@given(a=availability_windows(), b=availability_windows())
def test_extended_counters_add_under_merge(a, b):
    merged = merge_replay_windows(a, b)
    assert merged.servfails == a.servfails + b.servfails
    assert merged.timeouts == a.timeouts + b.timeouts
    assert merged.retries == a.retries + b.retries
    assert merged.stale_served == a.stale_served + b.stale_served
    assert merged.admission_queued == a.admission_queued + b.admission_queued
    assert (
        merged.admission_rejected
        == a.admission_rejected + b.admission_rejected
    )
    assert sum(merged.latency_buckets) == sum(a.latency_buckets) + sum(
        b.latency_buckets
    )


# ----------------------------------------------------------------------
# Window fold == overall on a real chaos replay
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def outage_replay():
    return run_chaos_replay(
        make_universe(),
        correct_bind_config(dlv_outage_policy=DlvOutagePolicy.SERVFAIL),
        experiment_names(),
        scenario=registry_outage_scenario(
            rcode=RCode.SERVFAIL, start=100.0, end=900.0
        ),
        scenario_label="registry-servfail",
        policy_label="strict",
        load=SMALL_LOAD,
    )


def test_window_fold_reproduces_overall(outage_replay):
    assert fold_windows(outage_replay.windows) == outage_replay.overall
    folded = empty_replay_window()
    for window in outage_replay.windows:
        folded = merge_replay_windows(folded, window)
    assert folded == outage_replay.overall
    for earlier, later in zip(outage_replay.windows, outage_replay.windows[1:]):
        assert earlier.end == later.start


def test_outage_replay_sees_the_fault(outage_replay):
    assert outage_replay.fault_bounds == (100.0, 900.0)
    during = outage_replay.during_fault()
    assert during.queries > 0
    assert during.servfails > 0
    assert outage_replay.overall.queries == SMALL_LOAD.query_budget()
    # Latency histogram counts every completed (non-shed) session.
    assert sum(outage_replay.overall.latency_buckets) == (
        outage_replay.overall.queries
    )


def test_chaos_replay_is_deterministic(outage_replay):
    again = run_chaos_replay(
        make_universe(),
        correct_bind_config(dlv_outage_policy=DlvOutagePolicy.SERVFAIL),
        experiment_names(),
        scenario=registry_outage_scenario(
            rcode=RCode.SERVFAIL, start=100.0, end=900.0
        ),
        scenario_label="registry-servfail",
        policy_label="strict",
        load=SMALL_LOAD,
    )
    assert chaos_replay_fingerprint(again) == chaos_replay_fingerprint(
        outage_replay
    )


def test_bounded_admission_sheds_but_keeps_accounting():
    load = dataclasses.replace(SMALL_LOAD, max_concurrent=1, max_queue=0)
    replay = run_chaos_replay(
        make_universe(),
        correct_bind_config(),
        experiment_names(),
        load=load,
    )
    overall = replay.overall
    assert overall.admission_rejected > 0
    # Shed arrivals still count against the budget — as failures with no
    # latency sample.
    assert overall.queries == load.query_budget()
    assert overall.failures >= overall.admission_rejected
    assert sum(overall.latency_buckets) == (
        overall.queries - overall.admission_rejected
    )


# ----------------------------------------------------------------------
# coerce_load
# ----------------------------------------------------------------------


def test_coerce_load_normalises():
    assert coerce_load(None) is None
    assert coerce_load(1) is None
    assert coerce_load(SMALL_LOAD) is SMALL_LOAD
    eight = coerce_load(8)
    assert isinstance(eight, ReplayLoad) and eight.users == 8


@pytest.mark.parametrize("bad", [True, False, 1.5, "4"])
def test_coerce_load_rejects_non_ints(bad):
    with pytest.raises(TypeError):
        coerce_load(bad)


@pytest.mark.parametrize("bad", [0, -1])
def test_coerce_load_rejects_non_positive(bad):
    with pytest.raises(ValueError):
        coerce_load(bad)


# ----------------------------------------------------------------------
# load=1 byte-identity: chaos cells
# ----------------------------------------------------------------------


def _brownout_scenario(universe):
    schedule_brownout(
        universe.network,
        universe.registry_address,
        start=0.0,
        end=float("inf"),
        extra_latency=0.05,
    )


FAULT_PLANS = {
    "none": None,
    "registry-servfail": registry_outage_scenario(rcode=RCode.SERVFAIL),
    "registry-blackhole": registry_outage_scenario(rcode=None),
    "registry-brownout": _brownout_scenario,
}


@pytest.mark.parametrize("plan", sorted(FAULT_PLANS))
def test_chaos_cell_load_one_is_byte_identical_to_serial(plan):
    scenario = FAULT_PLANS[plan]
    names = experiment_names()

    serial = run_chaos_cell(
        make_universe(), correct_bind_config(), names,
        scenario=scenario, scenario_label=plan, trace=True,
    )
    session = run_chaos_cell(
        make_universe(), correct_bind_config(), names,
        scenario=scenario, scenario_label=plan, trace=True, load=1,
    )

    assert result_fingerprint(session.result) == result_fingerprint(
        serial.result
    )
    assert export_traces_jsonl(session.result.traces) == export_traces_jsonl(
        serial.result.traces
    )
    assert session.servfail == serial.servfail
    assert session.case2_queries == serial.case2_queries


# ----------------------------------------------------------------------
# load=1 byte-identity: adversary cells
# ----------------------------------------------------------------------


def _victims():
    return experiment_names()[:5]


PERSONAS = {
    "spoofer": lambda u: deploy_spoofer(u, seed=9),
    "poisoner": lambda u: deploy_poisoner(u, victims=_victims(), seed=9),
    "referral-bomber": lambda u: deploy_referral_bomber(u, seed=9),
    "sig-bomber": lambda u: deploy_sig_bomber(u, seed=9),
}


@pytest.mark.parametrize("persona", sorted(PERSONAS))
def test_adversary_cell_load_one_is_byte_identical_to_serial(persona):
    adversary = PERSONAS[persona]
    names = experiment_names()

    serial = run_adversary_cell(
        make_universe(), correct_bind_config(), names,
        adversary=adversary, adversary_label=persona, trace=True,
    )
    session = run_adversary_cell(
        make_universe(), correct_bind_config(), names,
        adversary=adversary, adversary_label=persona, trace=True, load=1,
    )

    assert result_fingerprint(session.result) == result_fingerprint(
        serial.result
    )
    assert export_traces_jsonl(session.result.traces) == export_traces_jsonl(
        serial.result.traces
    )
    assert session.responses_forged == serial.responses_forged
    assert session.upstream_sends == serial.upstream_sends
    assert session.poisoned_cache_entries == serial.poisoned_cache_entries


# ----------------------------------------------------------------------
# Adversary replay under load
# ----------------------------------------------------------------------


def test_adversary_replay_under_load_reports_persona_damage():
    from repro.core import run_adversary_replay

    replay = run_adversary_replay(
        make_universe(),
        correct_bind_config(),
        experiment_names(),
        adversary=PERSONAS["spoofer"],
        adversary_label="spoofer",
        load=SMALL_LOAD,
    )
    assert replay.adversary == "spoofer"
    assert replay.responses_forged > 0
    assert replay.overall.queries == SMALL_LOAD.query_budget()
    assert replay.hardening is not None
