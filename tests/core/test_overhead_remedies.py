"""Tests for overhead metrics, comparisons, and remedy runs."""

import pytest

from repro.core import (
    LeakageExperiment,
    MetricComparison,
    OverheadComparison,
    OverheadMetrics,
    Remedy,
    compare_all,
    comparisons_against_baseline,
    resolver_config_for,
    run_remedy,
    universe_params_for,
)
from repro.core.overhead import SignalingCost
from repro.dnscore import RRType
from repro.resolver import correct_bind_config
from repro.workloads import AlexaWorkload, UniverseParams, WorkloadParams


@pytest.fixture(scope="module")
def workload():
    return AlexaWorkload(50, WorkloadParams(seed=33))


@pytest.fixture(scope="module")
def base_params(workload):
    return UniverseParams(
        modulus_bits=256,
        registry_filler=tuple(workload.registry_filler(800)),
    )


@pytest.fixture(scope="module")
def runs(workload, base_params):
    return compare_all(
        workload.domains,
        workload.names(50),
        correct_bind_config(),
        base_params,
        remedies=(Remedy.NONE, Remedy.TXT, Remedy.ZBIT, Remedy.HASHED),
    )


class TestMetricComparison:
    def test_overhead_and_ratio(self):
        comparison = MetricComparison(baseline=100.0, total=120.0)
        assert comparison.overhead == pytest.approx(20.0)
        assert comparison.ratio == pytest.approx(0.2)

    def test_zero_baseline(self):
        assert MetricComparison(baseline=0.0, total=5.0).ratio == 0.0

    def test_between(self):
        a = OverheadMetrics(10.0, 1000, 50, {})
        b = OverheadMetrics(12.0, 1100, 60, {})
        comparison = OverheadComparison.between("x", a, b)
        assert comparison.queries.overhead == 10
        row = comparison.row()
        assert row["time_ratio"] == pytest.approx(0.2)


class TestRemedyRecipes:
    def test_universe_params(self, base_params):
        assert universe_params_for(Remedy.TXT, base_params).deploy_txt_signal
        assert universe_params_for(Remedy.ZBIT, base_params).deploy_zbit_signal
        assert universe_params_for(Remedy.HASHED, base_params).registry_hashed
        assert universe_params_for(Remedy.NONE, base_params) == base_params

    def test_resolver_config(self):
        base = correct_bind_config()
        assert resolver_config_for(Remedy.TXT, base).txt_signaling
        assert resolver_config_for(Remedy.ZBIT, base).zbit_signaling
        assert resolver_config_for(Remedy.HASHED, base).hashed_dlv
        assert resolver_config_for(Remedy.NONE, base) == base


class TestRemedyOutcomes:
    def test_baseline_leaks(self, runs):
        assert runs[Remedy.NONE].result.leakage.leaked_count > 0

    def test_txt_eliminates_case2_leakage(self, runs):
        assert runs[Remedy.TXT].result.leakage.leaked_count == 0

    def test_zbit_eliminates_case2_leakage(self, runs):
        assert runs[Remedy.ZBIT].result.leakage.leaked_count == 0

    def test_zbit_adds_no_queries_over_txt(self, runs):
        zbit_queries = runs[Remedy.ZBIT].result.overhead.queries_issued
        txt_queries = runs[Remedy.TXT].result.overhead.queries_issued
        assert zbit_queries < txt_queries

    def test_hashed_mode_exposes_no_domains(self, runs):
        result = runs[Remedy.HASHED].result
        assert result.leakage.leaked_count == 0
        assert result.leakage.dlv_queries > 0  # digests still flow

    def test_islands_still_validated_under_remedies(self, runs, workload):
        baseline_ad = runs[Remedy.NONE].result.authenticated_answers
        for remedy in (Remedy.TXT, Remedy.ZBIT, Remedy.HASHED):
            assert runs[remedy].result.authenticated_answers == baseline_ad

    def test_comparisons_exclude_baseline(self, runs):
        rows = comparisons_against_baseline(runs)
        labels = {row.label for row in rows}
        assert "dlv" not in labels
        assert {"txt", "zbit", "hashed-dlv"} == labels


class TestSignalingCost:
    def test_txt_cost_measured_from_capture(self, runs):
        capture = runs[Remedy.TXT].result.capture
        cost = SignalingCost.of_query_type(capture, RRType.TXT)
        assert cost.exchanges > 0
        assert cost.bytes > cost.exchanges * 50
        assert cost.seconds > 0

    def test_no_txt_cost_in_baseline(self, runs):
        capture = runs[Remedy.NONE].result.capture
        cost = SignalingCost.of_query_type(capture, RRType.TXT)
        assert cost.exchanges == 0
