"""Tests for the remedy-tampering attacks and registry outages
(paper Section 6.2.3 "Attacks" and Section 8.4 outages)."""

import pytest

from repro.core import (
    LeakageExperiment,
    OutageServer,
    TamperingProxy,
    interpose_tampering,
    restore,
    take_down,
)
from repro.dnscore import Message, Name, RCode, RRType
from repro.resolver import ValidationStatus, correct_bind_config
from repro.workloads import (
    AlexaWorkload,
    Universe,
    UniverseParams,
    WorkloadParams,
    secured_domains,
)


def n(text):
    return Name.from_text(text)


def build_world(**universe_overrides):
    workload = AlexaWorkload(25, WorkloadParams(seed=61))
    universe = Universe(
        workload.domains,
        UniverseParams(
            modulus_bits=256,
            registry_filler=tuple(workload.registry_filler(400)),
            **universe_overrides,
        ),
    )
    return workload, universe


def tamper_all_providers(universe, **kwargs):
    proxies = []
    for address in universe._provider_addresses:
        proxies.append(interpose_tampering(universe.network, address, **kwargs))
    return proxies


class TestZbitTampering:
    def test_forced_z_bit_reopens_the_leak(self):
        """An attacker setting Z on every response defeats the Z-bit
        remedy: the resolver believes every zone has a deposit."""
        workload, universe = build_world(deploy_zbit_signal=True)
        tamper_all_providers(universe, force_z_bit=True)
        config = correct_bind_config(zbit_signaling=True)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(workload.names(25))
        assert result.leakage.leaked_count > 0

    def test_cleared_z_bit_downgrades_islands(self):
        """Clearing Z suppresses legitimate look-aside: islands of
        security lose their DLV validation path."""
        specs = secured_domains()
        universe = Universe(
            specs, UniverseParams(modulus_bits=256, deploy_zbit_signal=True)
        )
        tamper_all_providers(universe, force_z_bit=False)
        config = correct_bind_config(zbit_signaling=True)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run([s.name for s in specs])
        # Only the 40 on-path-secured domains validate; islands lose AD.
        assert result.authenticated_answers == 40

    def test_tamper_counter(self):
        workload, universe = build_world(deploy_zbit_signal=True)
        proxies = tamper_all_providers(universe, force_z_bit=True)
        config = correct_bind_config(zbit_signaling=True)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        experiment.run(workload.names(5))
        assert sum(p.tampered_responses for p in proxies) > 0


class TestTxtTampering:
    def test_rewritten_txt_reopens_the_leak(self):
        workload, universe = build_world(deploy_txt_signal=True)
        tamper_all_providers(universe, rewrite_txt_signal=1)
        config = correct_bind_config(txt_signaling=True)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(workload.names(25))
        assert result.leakage.leaked_count > 0

    def test_hardened_resolver_rejects_forged_signal_from_signed_zone(self):
        """With validate_txt_signal on, a signed zone's rewritten TXT
        fails its RRSIG check and the signal is discarded."""
        specs = secured_domains(dlv_deposited_islands=False)
        universe = Universe(
            specs, UniverseParams(modulus_bits=256, deploy_txt_signal=True)
        )
        tamper_all_providers(universe, rewrite_txt_signal=1)
        config = correct_bind_config(
            txt_signaling=True, validate_txt_signal=True
        )
        resolver = universe.make_resolver(config)
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        # Signal forged to 1, but signature check fails -> treated as
        # no signal -> look-aside vetoed -> no registry traffic.
        assert result.lookaside_vetoed
        assert not universe.capture.queries_to(universe.registry_address)

    def test_hardened_resolver_accepts_genuine_signal(self):
        specs = secured_domains()
        universe = Universe(
            specs, UniverseParams(modulus_bits=256, deploy_txt_signal=True)
        )
        config = correct_bind_config(
            txt_signaling=True, validate_txt_signal=True
        )
        resolver = universe.make_resolver(config)
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.status is ValidationStatus.SECURE

    def test_unsigned_zone_signal_cannot_be_hardened(self):
        """The residual risk the paper acknowledges: unsigned zones have
        no signature to check, so their signal is trusted as-is."""
        workload, universe = build_world(deploy_txt_signal=True)
        tamper_all_providers(universe, rewrite_txt_signal=1)
        config = correct_bind_config(
            txt_signaling=True, validate_txt_signal=True
        )
        resolver = universe.make_resolver(config)
        unsigned = next(s for s in workload.domains if not s.signed)
        result = resolver.resolve(unsigned.name, RRType.A)
        assert not result.lookaside_vetoed


class TestProxyMechanics:
    def test_untouched_response_passes_through(self):
        workload, universe = build_world()
        address = universe._provider_addresses[0]
        proxy = interpose_tampering(universe.network, address)
        resolver = universe.make_resolver(correct_bind_config())
        resolver.resolve(workload.names(1)[0], RRType.A)
        assert proxy.tampered_responses == 0

    def test_restore_brings_original_back(self):
        workload, universe = build_world()
        address = universe.registry_address
        original = universe.network.server_at(address)
        take_down(universe.network, address)
        assert isinstance(universe.network.server_at(address), OutageServer)
        restore(universe.network, address, original)
        assert universe.network.server_at(address) is original


class TestRegistryOutage:
    def test_outage_downgrades_islands_without_breaking_resolution(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        outage = take_down(universe.network, universe.registry_address)
        resolver = universe.make_resolver(correct_bind_config())
        island = next(s for s in specs if s.is_island_of_security())
        result = resolver.resolve(island.name, RRType.A)
        assert result.rcode is RCode.NOERROR  # the answer still flows
        assert result.status is not ValidationStatus.SECURE
        assert outage.queries_seen > 0

    def test_secure_domains_unaffected_by_outage(self):
        specs = secured_domains()
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        take_down(universe.network, universe.registry_address)
        resolver = universe.make_resolver(correct_bind_config())
        anchored = next(s for s in specs if s.ds_in_parent)
        result = resolver.resolve(anchored.name, RRType.A)
        assert result.status is ValidationStatus.SECURE
