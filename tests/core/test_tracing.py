"""Tracing + metrics layer: span mechanics, determinism, export."""

import pytest

from repro.core import (
    LeakageExperiment,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    export_traces_jsonl,
    import_traces_jsonl,
    observer_trace_summary,
    render_span_tree,
    standard_universe,
    standard_workload,
)
from repro.core.metrics import Counter, Histogram
from repro.dnscore import RRType
from repro.netsim import SimClock
from repro.resolver import correct_bind_config

DOMAINS = 16
FILLER = 300
RUN = 6


def make_traced_run(trace=True, metrics=True, seed=2016):
    workload = standard_workload(DOMAINS, seed=seed)
    universe = standard_universe(workload, filler_count=FILLER)
    experiment = LeakageExperiment(
        universe,
        correct_bind_config(),
        ptr_fraction=0.0,
        tracer=Tracer(universe.clock) if trace else None,
        metrics=MetricsRegistry() if metrics else None,
    )
    return experiment.run(workload.names(RUN))


# ----------------------------------------------------------------------
# Tracer mechanics (no simulator involved)
# ----------------------------------------------------------------------


def test_span_stack_nesting_and_drain():
    tracer = Tracer(SimClock())
    tracer.begin("root", kind="outer")
    tracer.begin("child")
    tracer.event("leaf", n=1)
    tracer.finish(ok=True)
    tracer.finish()
    roots = tracer.drain()
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "root" and root.attrs["kind"] == "outer"
    assert [span.name for span in root.walk()] == ["root", "child", "leaf"]
    assert root.children[0].attrs["ok"] is True
    assert tracer.drain() == []  # drained


def test_finish_without_begin_raises():
    tracer = Tracer(SimClock())
    with pytest.raises(RuntimeError):
        tracer.finish()


def test_annotate_targets_innermost_open_span():
    tracer = Tracer(SimClock())
    tracer.begin("outer")
    tracer.begin("inner")
    tracer.finish()
    tracer.annotate(leak="case-2")  # inner already closed -> outer
    tracer.finish()
    (root,) = tracer.drain()
    assert root.attrs["leak"] == "case-2"
    assert "leak" not in root.children[0].attrs


def test_null_tracer_accepts_everything():
    tracer = NullTracer()
    tracer.begin("x", a=1)
    tracer.annotate(b=2)
    tracer.event("y")
    tracer.finish()
    tracer.finish()  # never raises, even unbalanced
    with tracer.span("z"):
        pass
    assert tracer.drain() == []
    assert tracer.open_depth == 0


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


def test_metrics_registry_counts_and_snapshots():
    registry = MetricsRegistry()
    registry.inc("a.b")
    registry.inc("a.b", 4)
    registry.observe("lat", 0.25)
    registry.observe("lat", 0.75)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"a.b": 5}
    assert snapshot["histograms"]["lat"]["count"] == 2
    assert snapshot["histograms"]["lat"]["mean"] == 0.5
    assert isinstance(registry.counter("a.b"), Counter)
    assert isinstance(registry.histogram("lat"), Histogram)


def test_null_metrics_registry_records_nothing():
    registry = NullMetricsRegistry()
    registry.inc("a", 10)
    registry.observe("b", 1.0)
    registry.counter("c").inc()
    registry.histogram("d").observe(2.0)
    assert len(registry) == 0
    assert registry.snapshot() == {"counters": {}, "histograms": {}}
    assert not registry.enabled
    assert NULL_METRICS.snapshot() == {"counters": {}, "histograms": {}}


# ----------------------------------------------------------------------
# Traced experiment runs
# ----------------------------------------------------------------------


def test_traced_run_produces_one_root_per_query():
    result = make_traced_run()
    assert len(result.traces) == RUN
    for root in result.traces:
        assert root.name == "resolution"
        assert root.parent_id is None
        assert root.end is not None and root.end >= root.start


def test_case2_leak_tagged_on_lookaside_span():
    result = make_traced_run()
    tagged = [
        span
        for root in result.traces
        for span in root.walk()
        if span.name == "lookaside" and span.attrs.get("leak") == "case-2"
    ]
    assert tagged, "expected at least one Case-2 look-aside search"
    for span in tagged:
        assert span.attrs["leak_point"].endswith(".dlv.isc.org.")
    # Case-2 probes in traces must match the classifier's count.
    probes = [
        span
        for root in result.traces
        for span in root.walk()
        if span.name == "dlv_probe" and span.attrs.get("leak") == "case-2"
    ]
    assert len(probes) == result.leakage.case2_queries


def test_trace_export_is_deterministic_across_runs():
    first = export_traces_jsonl(make_traced_run().traces)
    second = export_traces_jsonl(make_traced_run().traces)
    assert first == second
    assert first.endswith("\n")


def test_trace_export_differs_across_seeds():
    first = export_traces_jsonl(make_traced_run(seed=2016).traces)
    second = export_traces_jsonl(make_traced_run(seed=7).traces)
    assert first != second


def test_trace_roundtrip_import_equals_export():
    text = export_traces_jsonl(make_traced_run().traces)
    roots = import_traces_jsonl(text)
    assert export_traces_jsonl(roots) == text


def test_metrics_snapshot_deterministic_and_consistent():
    first = make_traced_run()
    second = make_traced_run()
    assert first.metrics == second.metrics
    counters = first.metrics["counters"]
    assert counters["resolver.resolutions"] == RUN
    assert counters["lookaside.case2_probes"] == first.leakage.case2_queries
    # Transport sees at least every engine send (plus stub traffic).
    assert counters["net.exchanges"] >= counters["engine.queries_sent"]


def test_untraced_run_has_no_telemetry():
    result = make_traced_run(trace=False, metrics=False)
    assert result.traces == ()
    assert result.metrics is None


def test_traced_and_untraced_runs_agree_on_leakage():
    traced = make_traced_run()
    untraced = make_traced_run(trace=False, metrics=False)
    assert traced.leakage.leaked_count == untraced.leakage.leaked_count
    assert traced.leakage.case2_queries == untraced.leakage.case2_queries
    assert traced.rcode_counts == untraced.rcode_counts


def test_render_span_tree_shape():
    result = make_traced_run()
    text = render_span_tree(result.traces[0])
    lines = text.splitlines()
    assert lines[0].startswith("resolution ")
    assert any(line.startswith(("├── ", "└── ")) for line in lines[1:])


def test_observer_trace_summary_attributes_leaks_to_registry():
    workload = standard_workload(DOMAINS)
    universe = standard_universe(workload, filler_count=FILLER)
    experiment = LeakageExperiment(
        universe,
        correct_bind_config(),
        ptr_fraction=0.0,
        tracer=Tracer(universe.clock),
        metrics=MetricsRegistry(),
    )
    result = experiment.run(workload.names(RUN))
    summaries = {s.address: s for s in observer_trace_summary(result.traces)}
    registry = summaries[universe.registry_address]
    assert registry.case2_probes == result.leakage.case2_queries
    assert registry.leaked_qnames
    others_case2 = sum(
        s.case2_probes
        for address, s in summaries.items()
        if address != universe.registry_address
    )
    assert others_case2 == 0
