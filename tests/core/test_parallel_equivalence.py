"""Serial ↔ parallel equivalence: the sharded runner's core contract.

For the same ``(names, seed, shard count)``, the merged result must be
byte-identical no matter how the shards execute — in-process, or on a
``fork`` worker pool, in any completion order.  These tests pin that
contract across multiple seeds and shard counts, compare the exported
trace JSONL byte for byte, and extend the check to the chaos and
adversary matrix drivers.
"""

import dataclasses

import pytest

from repro.core import (
    LeakageExperiment,
    MultiprocessingExecutor,
    SerialExecutor,
    deploy_spoofer,
    derive_subseed,
    plan_shards,
    result_fingerprint,
    run_chaos_matrix,
    run_adversary_matrix,
    run_sharded_experiment,
    registry_outage_scenario,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import ResolverConfig, correct_bind_config

DOMAINS = 18
FILLER = 300

SEEDS = (2016, 2017, 2018)
SHARD_COUNTS = (2, 3)


def _sweep_inputs(seed):
    workload = standard_workload(DOMAINS, seed=seed)
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=seed
    )
    return factory, workload.names(DOMAINS)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_serial_and_parallel_merged_results_are_byte_identical(seed, shards):
    factory, names = _sweep_inputs(seed)
    config = correct_bind_config()
    serial = run_sharded_experiment(
        factory, config, names, seed=seed, shards=shards,
        executor=SerialExecutor(), trace=True,
    )
    parallel = run_sharded_experiment(
        factory, config, names, seed=seed, shards=shards,
        executor=MultiprocessingExecutor(2), trace=True,
    )
    serial_print = result_fingerprint(serial)
    parallel_print = result_fingerprint(parallel)
    # The full fingerprint covers everything; the named asserts below
    # give readable diffs for the pieces the issue calls out.
    assert serial.summary() == parallel.summary()
    assert serial.status_counts == parallel.status_counts
    assert serial.rcode_counts == parallel.rcode_counts
    assert serial_print["traces_jsonl"] == parallel_print["traces_jsonl"]
    assert serial_print == parallel_print


@pytest.mark.parametrize("seed", SEEDS)
def test_worker_count_does_not_change_the_merge(seed):
    """Same plan, different pool widths: 2 vs 3 workers."""
    factory, names = _sweep_inputs(seed)
    config = correct_bind_config()
    results = [
        run_sharded_experiment(
            factory, config, names, seed=seed, shards=3,
            executor=MultiprocessingExecutor(workers),
        )
        for workers in (2, 3)
    ]
    prints = [result_fingerprint(result) for result in results]
    assert prints[0] == prints[1]


def test_single_shard_matches_plain_run_byte_for_byte():
    """shards=1 through the sharded machinery ≡ a plain
    LeakageExperiment.run on the shard's own universe."""
    seed = SEEDS[0]
    factory, names = _sweep_inputs(seed)
    config = correct_bind_config()
    sharded = run_sharded_experiment(
        factory, config, names, seed=seed, shards=1,
        executor=SerialExecutor(),
    )
    plain = LeakageExperiment(
        factory(derive_subseed(seed, 0)), config
    ).run(names)
    assert result_fingerprint(sharded) == result_fingerprint(plain)


def test_shard_plan_is_contiguous_balanced_and_seeded():
    _, names = _sweep_inputs(2016)
    plan = plan_shards(names, 4, seed=99)
    assert [spec.index for spec in plan] == [0, 1, 2, 3]
    # Contiguous cover of the input, first shards one name larger.
    flattened = [name for spec in plan for name in spec.names]
    assert flattened == list(names)
    sizes = [len(spec.names) for spec in plan]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == sorted(sizes, reverse=True)
    # Sub-seeds are distinct, stable, and platform-independent.
    assert [spec.seed for spec in plan] == [
        derive_subseed(99, index) for index in range(4)
    ]
    assert len({spec.seed for spec in plan}) == 4
    assert plan_shards(names, 4, seed=99) == plan


def test_empty_and_tiny_workloads_shard_cleanly():
    factory, names = _sweep_inputs(2016)
    config = correct_bind_config()
    empty = run_sharded_experiment(
        factory, config, [], seed=2016, shards=3, executor=SerialExecutor()
    )
    assert empty.leakage.domains_queried == 0
    assert empty.capture is None or len(empty.capture) == 0
    # More shards than names: trailing shards are empty but harmless.
    tiny = run_sharded_experiment(
        factory, config, names[:2], seed=2016, shards=4,
        executor=SerialExecutor(),
    )
    assert tiny.leakage.domains_queried == 2
    assert [name.to_text() for name in tiny.names] == [
        name.to_text() for name in names[:2]
    ]


def _chaos_inputs():
    workload = standard_workload(10)
    factory = standard_universe_factory(10, filler_count=150)

    def universe_factory():
        return factory(7)

    names = workload.names(10)
    scenarios = {
        "none": None,
        "registry-down": registry_outage_scenario(),
    }
    configs = {"bind-correct": correct_bind_config()}
    return universe_factory, names, scenarios, configs


def test_chaos_matrix_parallel_equals_serial():
    universe_factory, names, scenarios, configs = _chaos_inputs()
    serial = run_chaos_matrix(universe_factory, names, scenarios, configs)
    parallel = run_chaos_matrix(
        universe_factory, names, scenarios, configs, parallelism=2
    )
    assert [r.describe() for r in serial] == [r.describe() for r in parallel]
    assert [result_fingerprint(r.result) for r in serial] == [
        result_fingerprint(r.result) for r in parallel
    ]


def test_adversary_matrix_parallel_equals_serial():
    workload = standard_workload(8)
    factory = standard_universe_factory(8, filler_count=100)

    def universe_factory():
        return factory(7)

    names = workload.names(8)
    adversaries = {"spoofer": lambda u: deploy_spoofer(u, seed=7)}
    hardened = ResolverConfig()
    configs = {
        "hardened": hardened,
        "unhardened": dataclasses.replace(
            hardened, hardening=hardened.hardening.off()
        ),
    }
    serial = run_adversary_matrix(universe_factory, names, adversaries, configs)
    parallel = run_adversary_matrix(
        universe_factory, names, adversaries, configs, parallelism=2
    )
    # Serial order is baseline-then-adversaries per policy; the
    # parallel reassembly must reproduce it exactly.
    assert [(r.policy, r.adversary) for r in serial] == [
        (r.policy, r.adversary) for r in parallel
    ]
    assert [r.describe() for r in serial] == [r.describe() for r in parallel]
