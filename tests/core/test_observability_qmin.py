"""Tests for qname minimisation and the observer-exposure analysis."""

import pytest

from repro.core import (
    LeakageExperiment,
    observer_exposures,
    standard_universe,
    standard_workload,
    universe_observers,
)
from repro.core.observability import _contains_domain
from repro.dnscore import Name, RCode, RRType
from repro.resolver import correct_bind_config


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def worlds():
    """The same 30-domain workload resolved with and without qmin."""
    workload = standard_workload(30)
    results = {}
    for qmin in (False, True):
        universe = standard_universe(workload, filler_count=1500)
        config = correct_bind_config(qname_minimization=qmin)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(workload.names(30))
        results[qmin] = (universe, result)
    return workload, results


class TestContainsDomain:
    def test_exact(self):
        assert _contains_domain(n("example.com"), n("example.com"))

    def test_subdomain(self):
        assert _contains_domain(n("www.example.com"), n("example.com"))

    def test_dlv_form(self):
        assert _contains_domain(n("example.com.dlv.isc.org"), n("example.com"))

    def test_negative(self):
        assert not _contains_domain(n("example.org"), n("example.com"))
        assert not _contains_domain(n("com"), n("example.com"))

    def test_label_run_must_be_contiguous(self):
        assert not _contains_domain(n("example.x.com"), n("example.com"))


class TestQnameMinimization:
    def test_answers_identical(self, worlds):
        workload, results = worlds
        for qmin, (universe, result) in results.items():
            assert result.rcode_counts == {"NOERROR": 30}

    def test_root_sees_no_full_domains_with_qmin(self, worlds):
        workload, results = worlds
        universe, result = results[True]
        exposures = {
            e.role: e
            for e in observer_exposures(
                result.capture, workload.names(30), universe_observers(universe)
            )
        }
        assert len(exposures["root"].exposed_domains) == 0

    def test_root_sees_domains_without_qmin(self, worlds):
        workload, results = worlds
        universe, result = results[False]
        exposures = {
            e.role: e
            for e in observer_exposures(
                result.capture, workload.names(30), universe_observers(universe)
            )
        }
        assert len(exposures["root"].exposed_domains) > 0

    def test_registry_exposure_unaffected_by_qmin(self, worlds):
        """The headline of this extension: qname minimisation does not
        mitigate the DLV leak — look-aside names embed the domain."""
        workload, results = worlds
        for qmin, (universe, result) in results.items():
            exposures = {
                e.role: e
                for e in observer_exposures(
                    result.capture, workload.names(30), universe_observers(universe)
                )
            }
            registry = exposures["dlv-registry"]
            assert len(registry.exposed_domains) == result.leakage.leaked_count + len(
                result.leakage.served_domains
            )
            assert len(registry.exposed_domains) > 10

    def test_minimized_probes_use_ns_qtype(self, worlds):
        workload, results = worlds
        universe, result = results[True]
        root_queries = [
            r for r in result.capture if r.is_query and r.dst == universe.root_address
        ]
        assert root_queries
        for record in root_queries:
            if record.qname.is_root():
                continue  # validator fetches the root's own DNSKEY/NS
            # Descent probes are minimised: one label, qtype NS (DS
            # queries at TLD cuts are also legitimate root traffic).
            assert record.qname.label_count <= 2
            assert record.qtype in (RRType.NS, RRType.DS)

    def test_nxdomain_still_detected_with_qmin(self, worlds):
        workload, results = worlds
        universe, result = results[True]
        resolver = universe.make_resolver(
            correct_bind_config(qname_minimization=True)
        )
        outcome = resolver.resolve(n("definitely-not-real.com"), RRType.A)
        assert outcome.rcode is RCode.NXDOMAIN


class TestExposureReport:
    def test_fields(self, worlds):
        workload, results = worlds
        universe, result = results[False]
        exposures = observer_exposures(
            result.capture, workload.names(30), universe_observers(universe)
        )
        for exposure in exposures:
            assert exposure.distinct_qnames <= exposure.queries_received
            assert 0.0 <= exposure.exposure_fraction(30) <= 1.0

    def test_unlisted_observers_ignored(self, worlds):
        workload, results = worlds
        universe, result = results[False]
        exposures = observer_exposures(result.capture, workload.names(30), {})
        assert exposures == []
