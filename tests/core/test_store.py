"""The crash-safe result store: commit atomicity, verified reads,
corruption handling, keys, journal, gc.

The two properties the issue pins with Hypothesis:

* **commit is idempotent** — committing the same (key, result) any
  number of times leaves exactly one cell whose load fingerprints
  identically to the original;
* **corruption is detected, never silently reused** — a truncated or
  bit-flipped cell file loads as ``None`` (forcing a re-run) and is
  quarantined, for *any* corruption position.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ResultStore,
    SweepJournal,
    config_digest,
    current_code_version,
    fingerprint_digest,
    names_digest,
    plan_shards,
    result_fingerprint,
    run_shard,
    shard_cell_key,
    stable_digest,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import ResolverConfig, correct_bind_config

DOMAINS = 8
FILLER = 120
SEED = 2016


@pytest.fixture(scope="module")
def shard_result():
    """One small shard result, computed once for the whole module."""
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=SEED
    )
    names = standard_workload(DOMAINS, seed=SEED).names(DOMAINS)
    plan = plan_shards(names, 2, SEED)
    spec = plan[0]
    result = run_shard(factory, correct_bind_config(), spec)
    key = shard_cell_key(
        factory, correct_bind_config(), spec, shard_count=2, seed=SEED
    )
    return key, result


def test_commit_load_roundtrip_preserves_fingerprint(tmp_path, shard_result):
    key, result = shard_result
    store = ResultStore(tmp_path)
    path = store.commit(key, result)
    assert path.exists()
    loaded = ResultStore(tmp_path).load(key)
    assert loaded is not None
    assert result_fingerprint(loaded) == result_fingerprint(result)


def test_missing_cell_is_a_miss(tmp_path, shard_result):
    key, _ = shard_result
    store = ResultStore(tmp_path)
    assert store.load(key) is None
    assert store.stats.misses == 1
    assert store.stats.corrupt_detected == 0


def test_commit_is_atomic_no_temp_left_behind(tmp_path, shard_result):
    key, result = shard_result
    store = ResultStore(tmp_path)
    store.commit(key, result)
    assert not list(tmp_path.glob("*/*.tmp.*"))


@settings(max_examples=8, deadline=None)
@given(repeats=st.integers(min_value=1, max_value=4))
def test_commit_is_idempotent(tmp_path_factory, shard_result, repeats):
    key, result = shard_result
    root = tmp_path_factory.mktemp("store-idem")
    store = ResultStore(root)
    for _ in range(repeats):
        store.commit(key, result)
    cells = list(root.glob("*/*.cell"))
    assert len(cells) == 1
    loaded = ResultStore(root).load(key)
    assert loaded is not None
    assert result_fingerprint(loaded) == result_fingerprint(result)


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_corruption_is_detected_never_silently_reused(
    tmp_path_factory, shard_result, data
):
    """Truncate or bit-flip the committed file at an arbitrary point:
    the load must fail verification (→ re-run), never hand back a
    wrong result."""
    key, result = shard_result
    root = tmp_path_factory.mktemp("store-corrupt")
    store = ResultStore(root)
    path = store.commit(key, result)
    blob = bytearray(path.read_bytes())
    mode = data.draw(st.sampled_from(["truncate", "bitflip"]))
    position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    if mode == "truncate":
        corrupted = bytes(blob[:position])
    else:
        blob[position] ^= data.draw(st.integers(min_value=1, max_value=255))
        corrupted = bytes(blob)
    path.write_bytes(corrupted)

    reader = ResultStore(root)
    loaded = reader.load(key)
    if loaded is not None:
        # The only legal "survival" is a flip that verification proves
        # harmless — the recomputed fingerprint must still match the
        # original result exactly.
        assert result_fingerprint(loaded) == result_fingerprint(result)
    else:
        assert reader.stats.corrupt_detected == 1
        # Quarantined aside, so the next run re-commits cleanly.
        assert not path.exists()
        assert path.with_suffix(path.suffix + ".corrupt").exists()


def test_corrupt_cell_is_quarantined_and_recommit_recovers(
    tmp_path, shard_result
):
    key, result = shard_result
    store = ResultStore(tmp_path)
    path = store.commit(key, result)
    path.write_bytes(b"{ not json")
    assert store.load(key) is None
    assert store.stats.corrupt_detected == 1
    store.commit(key, result)
    assert store.load(key) is not None


def test_verify_reports_and_quarantines(tmp_path, shard_result):
    key, result = shard_result
    store = ResultStore(tmp_path)
    path = store.commit(key, result)
    clean = store.verify()
    assert clean.clean and clean.checked == 1 and clean.ok == 1
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    report = ResultStore(tmp_path).verify()
    assert not report.clean
    assert report.checked == 1 and len(report.corrupt) == 1


def test_gc_reclaims_tmp_corrupt_and_stale_versions(tmp_path, shard_result):
    key, result = shard_result
    store = ResultStore(tmp_path)
    path = store.commit(key, result)
    # A stray temp file from a crashed commit.
    stray = path.parent / (path.name + ".tmp.12345")
    stray.write_bytes(b"partial")
    # A quarantined corpse.
    corpse = path.parent / (path.name + ".corrupt")
    corpse.write_bytes(b"junk")
    # A cell from another code version.
    old_key = dataclasses.replace(key, code_version="0.0.0-old")
    store.commit(old_key, result)
    removed = store.gc()
    assert removed["tmp"] == 1
    assert removed["corrupt"] == 1
    assert removed["stale"] == 1
    assert path.exists()
    assert ResultStore(tmp_path).load(key) is not None


def test_gc_reclaims_orphaned_expired_and_corrupt_leases(
    tmp_path, shard_result
):
    """The lease classes: a lease whose cell is committed (owner died
    between commit and release), a lease whose heartbeat is long past
    its TTL, a fresh unparseable lease (kept for worker arbitration)
    vs an old one (reclaimed), and takeover-rename remnants."""
    import json as json_module

    key, result = shard_result
    store = ResultStore(tmp_path)
    store.commit(key, result)
    now = 1_000_000.0

    def lease_payload(heartbeat, ttl=5.0):
        return json_module.dumps(
            {
                "format": 1,
                "cell": "x" * 64,
                "owner": "w0",
                "nonce": "w0:1:1",
                "token": 1,
                "ttl": ttl,
                "acquired": heartbeat,
                "heartbeat": heartbeat,
                "takeovers": 0,
            }
        )

    # Orphaned: the committed cell still carries a lease.
    orphaned = store.lease_path_for(key.digest())
    orphaned.write_text(lease_payload(now))
    # Expired: uncommitted cell, heartbeat 100×TTL ago.
    expired = store.lease_path_for("ee" + "0" * 62)
    expired.parent.mkdir(parents=True, exist_ok=True)
    expired.write_text(lease_payload(now - 500.0))
    # Live: uncommitted cell, fresh heartbeat — must be kept.
    live = store.lease_path_for("aa" + "0" * 62)
    live.parent.mkdir(parents=True, exist_ok=True)
    live.write_text(lease_payload(now - 1.0))
    # Corrupt: unparseable bytes.  mtime is *now*, so the fresh one is
    # left for the workers' own takeover arbitration.
    fresh_garbage = store.lease_path_for("bb" + "0" * 62)
    fresh_garbage.parent.mkdir(parents=True, exist_ok=True)
    fresh_garbage.write_bytes(b"\x00\xffnot a lease")
    # A takeover-rename remnant (crash between rename and unlink).
    stale_remnant = expired.parent / (expired.name + ".stale.4242")
    stale_remnant.write_text(lease_payload(now - 500.0))

    removed = store.gc(now=now)
    assert removed["lease_orphaned"] == 1 and not orphaned.exists()
    assert removed["lease_expired"] == 1 and not expired.exists()
    assert removed["lease_stale"] == 1 and not stale_remnant.exists()
    assert removed["lease_corrupt"] == 0 and fresh_garbage.exists()
    assert live.exists()
    assert removed["bytes"] > 0

    # Hours later the garbage lease is past the grace window.
    from repro.core.store import GC_LEASE_GRACE_SECONDS

    later = fresh_garbage.stat().st_mtime + GC_LEASE_GRACE_SECONDS + 1.0
    removed = store.gc(now=later)
    assert removed["lease_corrupt"] == 1 and not fresh_garbage.exists()
    # The live lease's heartbeat is ancient by then too.
    assert removed["lease_expired"] == 1 and not live.exists()


def test_gc_keeps_corrupt_corpse_until_recommit(tmp_path, shard_result):
    """A `.corrupt` corpse is forensic evidence while its cell is
    missing; once the cell is recommitted healthy it becomes junk."""
    key, result = shard_result
    store = ResultStore(tmp_path)
    path = store.commit(key, result)
    # Corrupt the cell: load() quarantines it to `<name>.corrupt`.
    path.write_bytes(b"{ not json")
    assert store.load(key) is None
    corpse = path.parent / (path.name + ".corrupt")
    assert corpse.exists() and not path.exists()

    removed = store.gc()
    assert removed["corrupt"] == 0 and corpse.exists()  # evidence kept

    store.commit(key, result)  # recommitted healthy
    removed = store.gc()
    assert removed["corrupt"] == 1 and not corpse.exists()
    assert ResultStore(tmp_path).load(key) is not None


def test_cell_key_digest_is_stable_and_input_sensitive(shard_result):
    key, _ = shard_result
    assert key.digest() == key.digest()
    assert key.code_version == current_code_version()
    # Every input-side component dirties the address.
    variants = [
        dataclasses.replace(key, seed=key.seed + 1),
        dataclasses.replace(key, shard_index=key.shard_index + 1),
        dataclasses.replace(key, shard_seed=key.shard_seed + 1),
        dataclasses.replace(key, code_version="9.9.9"),
        dataclasses.replace(key, config=config_digest(ResolverConfig())),
        dataclasses.replace(key, extra=key.extra + (("x", "1"),)),
    ]
    digests = {key.digest()} | {variant.digest() for variant in variants}
    assert len(digests) == 1 + len(variants)


def test_config_and_names_digests_discriminate():
    bind = correct_bind_config()
    assert config_digest(bind) == config_digest(correct_bind_config())
    assert config_digest(bind) != config_digest(
        dataclasses.replace(bind, serve_stale=True)
    )
    names = standard_workload(DOMAINS, seed=SEED).names(DOMAINS)
    assert names_digest(names) == names_digest(list(names))
    assert names_digest(names) != names_digest(names[:-1])
    assert names_digest(names) != names_digest(list(reversed(names)))


def test_code_version_env_override_dirties_cells(
    tmp_path, shard_result, monkeypatch
):
    key, result = shard_result
    ResultStore(tmp_path).commit(key, result)
    monkeypatch.setenv("REPRO_CODE_VERSION", "experimental")
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=SEED
    )
    names = standard_workload(DOMAINS, seed=SEED).names(DOMAINS)
    spec = plan_shards(names, 2, SEED)[0]
    new_key = shard_cell_key(
        factory, correct_bind_config(), spec, shard_count=2, seed=SEED
    )
    assert new_key.code_version == "experimental"
    assert new_key.digest() != key.digest()
    assert ResultStore(tmp_path).load(new_key) is None


def test_stable_digest_canonicalisation():
    # Key order and tuple/list distinctions must not matter.
    assert stable_digest({"a": 1, "b": (1, 2)}) == stable_digest(
        {"b": [1, 2], "a": 1}
    )
    # Sets are order-free.
    assert stable_digest({1, 2, 3}) == stable_digest({3, 2, 1})
    # Enum identity is part of the digest.
    from repro.resolver.config import DlvOutagePolicy

    assert stable_digest(DlvOutagePolicy.SERVFAIL) != stable_digest(
        DlvOutagePolicy.INSECURE_FALLBACK
    )


def test_journal_appends_and_tolerates_torn_tail(tmp_path):
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record("sweep-start", cells=4)
    journal.record("commit", shard=0, key="abc")
    # A crash mid-append leaves a torn final line.
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "comm')
    events = journal.events()
    assert [event["event"] for event in events] == ["sweep-start", "commit"]
    # Appending after the torn tail keeps working.
    journal.record("sweep-end", reused=1)
    assert journal.events()[-1]["event"] == "sweep-end"


def test_fingerprint_digest_matches_result_identity(shard_result):
    key, result = shard_result
    assert fingerprint_digest(result) == stable_digest(
        result_fingerprint(result)
    )
