"""SweepJournal under concurrent appenders and torn tails.

The journal is the one store file that *many* writers append to at
once — every worker in a distributed sweep records its claims and
commits there.  These tests pin the two properties that make that
safe:

* **append atomicity** — records from concurrent appenders (threads
  and real processes) all survive, unmangled, and stay in per-writer
  order;
* **torn-tail healing** — a crash mid-append leaves at most one
  unparseable line, which ``events()`` skips and the next ``record()``
  terminates, so one torn write never poisons the file.
"""

import json
import multiprocessing
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SweepJournal

APPENDERS = 4
RECORDS_EACH = 25

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK, reason="needs fork")


def _append_burst(path, writer, count):
    journal = SweepJournal(Path(path))
    for index in range(count):
        journal.record("burst", writer=writer, index=index)


def _check_burst(path, writers, count):
    """Every (writer, index) pair present exactly once, every raw line
    parseable, and each writer's own records in order."""
    raw_lines = Path(path).read_text(encoding="utf-8").splitlines()
    assert len(raw_lines) == writers * count
    seen = {}
    for line in raw_lines:
        entry = json.loads(line)  # no interleaved/mangled lines
        seen.setdefault(entry["writer"], []).append(entry["index"])
    assert sorted(seen) == list(range(writers))
    for indexes in seen.values():
        assert indexes == sorted(indexes)  # per-writer order held
        assert len(set(indexes)) == count


def test_concurrent_thread_appenders(tmp_path):
    path = tmp_path / "journal.jsonl"
    threads = [
        threading.Thread(
            target=_append_burst, args=(path, writer, RECORDS_EACH)
        )
        for writer in range(APPENDERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    _check_burst(path, APPENDERS, RECORDS_EACH)
    assert len(SweepJournal(path).events()) == APPENDERS * RECORDS_EACH


@needs_fork
def test_concurrent_process_appenders(tmp_path):
    """The distributed-sweep shape: separate interpreters, one file."""
    path = tmp_path / "journal.jsonl"
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=_append_burst, args=(path, writer, RECORDS_EACH)
        )
        for writer in range(APPENDERS)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    _check_burst(path, APPENDERS, RECORDS_EACH)
    assert len(SweepJournal(path).events()) == APPENDERS * RECORDS_EACH


# Torn tails a crash can leave: truncated JSON, binary garbage, a bare
# opening brace.  None parses as JSON, so none can masquerade as a
# legitimate record.
TORN_FRAGMENTS = [
    b'{"event": "torn-claim", "cell": "ab',
    b"\x00\xff\x13garbage",
    b'["unterminated',
    b"{",
]


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.just("record"),
            st.sampled_from(range(len(TORN_FRAGMENTS))),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_torn_tails_never_hide_or_forge_records(ops):
    """Property: interleave real appends with crash-torn tails in any
    order — ``events()`` returns exactly the real records, in order,
    and healing never corrupts a neighbour."""
    with tempfile.TemporaryDirectory(prefix="journal-prop-") as workdir:
        journal = SweepJournal(Path(workdir) / "journal.jsonl")
        recorded = []
        for op in ops:
            if op == "record":
                sequence = len(recorded)
                journal.record("real", sequence=sequence)
                recorded.append(sequence)
            else:
                # A crash mid-append: bytes land, no newline, process
                # gone.  (The first crash may even create the file.)
                with open(journal.path, "ab") as handle:
                    handle.write(TORN_FRAGMENTS[op])
        events = journal.events()
        assert [event["sequence"] for event in events] == recorded
        assert all(event["event"] == "real" for event in events)


def test_heal_terminates_the_dead_line(tmp_path):
    """A record written after a torn tail starts on its own line: the
    torn fragment becomes one isolated skipped line, not a prefix."""
    journal = SweepJournal(tmp_path / "journal.jsonl")
    journal.record("real", sequence=0)
    with open(journal.path, "ab") as handle:
        handle.write(b'{"event": "torn')
    journal.record("real", sequence=1)
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 3
    json.loads(lines[0])
    with pytest.raises(json.JSONDecodeError):
        json.loads(lines[1])
    json.loads(lines[2])
    assert [event["sequence"] for event in journal.events()] == [0, 1]
