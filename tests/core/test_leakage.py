"""Tests for the leakage classifier and report."""

import pytest

from repro.core import LeakageCase, LeakageClassifier, LeakageExperiment
from repro.dnscore import Name, RRType
from repro.resolver import broken_anchor_bind_config, correct_bind_config
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def run():
    workload = AlexaWorkload(60, WorkloadParams(seed=23))
    universe = Universe(
        workload.domains,
        UniverseParams(
            modulus_bits=256,
            registry_filler=tuple(workload.registry_filler(1000)),
        ),
    )
    experiment = LeakageExperiment(universe, correct_bind_config())
    result = experiment.run(workload.names(60))
    return workload, universe, experiment, result


class TestClassification:
    def test_only_registry_traffic_classified(self, run):
        workload, universe, experiment, result = run
        classified = experiment.classifier.classify_queries(result.capture)
        for item in classified:
            assert item.record.dst == universe.registry_address

    def test_case1_iff_deposited(self, run):
        workload, universe, experiment, result = run
        classified = experiment.classifier.classify_queries(result.capture)
        for item in classified:
            has = universe.registry_zone.has_owner(item.record.qname)
            assert (item.case is LeakageCase.CASE1) == has

    def test_tld_level_flag(self, run):
        workload, universe, experiment, result = run
        classified = experiment.classifier.classify_queries(result.capture)
        for item in classified:
            relative = item.record.qname.relativize(universe.registry_origin)
            assert item.tld_level == (len(relative) == 1)

    def test_leaked_domains_are_case2_queried_domains(self, run):
        workload, universe, experiment, result = run
        queried = set(workload.names(60))
        for domain in result.leakage.leaked_domains:
            assert domain in queried
            assert not universe.has_dlv_deposit(domain)

    def test_served_domains_have_deposits(self, run):
        workload, universe, experiment, result = run
        for domain in result.leakage.served_domains:
            assert universe.has_dlv_deposit(domain)

    def test_response_kinds_cover_dlv_responses(self, run):
        workload, universe, experiment, result = run
        leak = result.leakage
        assert leak.noerror_responses == len(leak.served_domains) >= 0
        assert leak.nxdomain_responses > 0


class TestReportArithmetic:
    def test_case_split_sums(self, run):
        _, _, _, result = run
        leak = result.leakage
        assert leak.case1_queries + leak.case2_queries == leak.dlv_queries

    def test_proportion(self, run):
        _, _, _, result = run
        leak = result.leakage
        assert leak.leaked_proportion == leak.leaked_count / leak.domains_queried

    def test_utility_fraction_bounds(self, run):
        _, _, _, result = run
        assert 0.0 <= result.leakage.utility_fraction <= 1.0

    def test_case2_fraction_dominates_for_popular_domains(self, run):
        _, _, _, result = run
        assert result.leakage.case2_fraction > 0.8


class TestBrokenAnchorFloodsDlv:
    def test_indeterminate_everywhere_and_more_leaks(self):
        workload = AlexaWorkload(60, WorkloadParams(seed=23))
        universe = Universe(
            workload.domains,
            UniverseParams(
                modulus_bits=256,
                registry_filler=tuple(workload.registry_filler(1000)),
            ),
        )
        experiment = LeakageExperiment(universe, broken_anchor_bind_config())
        result = experiment.run(workload.names(60))
        statuses = result.status_counts
        # Everything is indeterminate on-path; the only secure zones are
        # those rescued off-path by a DLV deposit (the DLV anchor is
        # still configured in this misconfiguration).
        assert statuses.get("indeterminate", 0) >= 55
        assert statuses.get("insecure", 0) == 0
        assert statuses.get("indeterminate", 0) + statuses.get("secure", 0) == 60
        assert result.leakage.leaked_count > 0
        # Even deposited/secured domains can't validate on-path, so DLV
        # is consulted for everything not already cached.
        assert result.leakage.dlv_queries >= result.leakage.leaked_count
