"""Tests for NSEC zone enumeration of the registry (Section 7.3)."""

import pytest

from repro.core import NsecZoneWalker
from repro.crypto import KeyPool
from repro.dnscore import Name
from repro.servers import DenialMode, DLVRegistryServer
from repro.netsim import Network, ZeroLatency


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=71, pool_size=8, modulus_bits=256)
ORIGIN = n("dlv.isc.org")
DOMAINS = [
    "alpha.com", "beta.com", "gamma.net", "delta.org", "epsilon.de",
    "zeta.com", "eta.net", "theta.org",
]


def build(denial=DenialMode.NSEC, hashed=False):
    network = Network(latency=ZeroLatency())
    server = DLVRegistryServer.build(
        origin=ORIGIN,
        keyset=POOL.keys_for_zone(ORIGIN),
        deposits={n(d): POOL.keys_for_zone(n(d)) for d in DOMAINS},
        denial=denial,
        hashed=hashed,
    )
    network.register("registry", server)
    return network, server


class TestNsecWalk:
    def test_enumerates_every_deposit(self):
        network, server = build()
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk()
        assert result.complete
        enumerated = {d.to_text() for d in result.enumerated_domains(ORIGIN)}
        assert enumerated == {d + "." for d in DOMAINS}

    def test_query_cost_is_linear_in_zone_size(self):
        network, server = build()
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk()
        assert result.queries_sent <= len(DOMAINS) + 2

    def test_budget_stops_walk(self):
        network, server = build()
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk(max_queries=3)
        assert not result.complete
        assert result.queries_sent == 3
        assert 0 < len(result.owners) <= 4

    def test_empty_zone_walk_terminates_immediately(self):
        network = Network(latency=ZeroLatency())
        server = DLVRegistryServer.build(
            origin=ORIGIN, keyset=POOL.keys_for_zone(ORIGIN), deposits={}
        )
        network.register("registry", server)
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk()
        assert result.complete
        assert result.enumerated_domains(ORIGIN) == []


class TestNsec3Resists:
    def test_walk_fails_against_nsec3(self):
        network, server = build(denial=DenialMode.NSEC3)
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk(max_queries=50)
        assert not result.complete
        assert result.enumerated_domains(ORIGIN) == []


class TestHashedZoneWalk:
    def test_walk_yields_only_digests(self):
        """A hashed registry can still be NSEC-walked, but the attacker
        learns digests, not names — enumeration and query privacy
        compose."""
        network, server = build(hashed=True)
        walker = NsecZoneWalker(network, "registry", ORIGIN)
        result = walker.walk()
        assert result.complete
        labels = [d.labels[0] for d in result.enumerated_domains(ORIGIN)]
        assert len(labels) == len(DOMAINS)
        for label in labels:
            assert all(c in "0123456789abcdef" for c in label)
