"""Tests for the multi-user population experiment (Section 7.3.1)."""

import pytest

from repro.core import make_profiles, run_population
from repro.resolver import correct_bind_config
from repro.workloads import AlexaWorkload, UniverseParams, WorkloadParams


@pytest.fixture(scope="module")
def setting():
    workload = AlexaWorkload(60, WorkloadParams(seed=151))
    profiles = make_profiles(workload, user_count=4, domains_per_user=10)
    params = UniverseParams(
        modulus_bits=256,
        registry_filler=tuple(workload.registry_filler(800)),
    )
    return workload, profiles, params


@pytest.fixture(scope="module")
def results(setting):
    workload, profiles, params = setting
    shared = run_population(
        workload.domains, profiles, correct_bind_config(), True, params
    )
    dedicated = run_population(
        workload.domains, profiles, correct_bind_config(), False, params
    )
    return shared, dedicated


class TestProfiles:
    def test_profile_shape(self, setting):
        workload, profiles, _ = setting
        assert len(profiles) == 4
        for profile in profiles:
            assert len(profile.names) == 10
            assert len(set(profile.names)) == 10

    def test_profiles_overlap_on_popular_head(self, setting):
        workload, profiles, _ = setting
        sets = [set(p.names) for p in profiles]
        union = set().union(*sets)
        total = sum(len(s) for s in sets)
        assert len(union) < total  # popular domains shared across users

    def test_deterministic(self, setting):
        workload, _, _ = setting
        a = make_profiles(workload, 3, 5, seed=1)
        b = make_profiles(workload, 3, 5, seed=1)
        assert [p.names for p in a] == [p.names for p in b]


class TestGranularity:
    def test_shared_resolver_is_one_source(self, results):
        shared, _ = results
        assert shared.observed_sources == 1
        assert shared.attributable_users == 0

    def test_dedicated_resolvers_attribute_users(self, results):
        _, dedicated = results
        assert dedicated.observed_sources == 4
        assert dedicated.attributable_users == 4
        assert all(count > 0 for count in dedicated.per_user_exposure.values())

    def test_aggregate_exposure_similar_either_way(self, results):
        shared, dedicated = results
        assert shared.aggregate_exposed > 0
        assert dedicated.aggregate_exposed >= shared.aggregate_exposed

    def test_shared_cache_suppresses_duplicate_queries(self, results):
        """Overlapping profiles behind one cache produce fewer DLV
        queries than four independent caches."""
        shared, dedicated = results
        assert shared.total_dlv_queries < dedicated.total_dlv_queries
