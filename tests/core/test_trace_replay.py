"""Tests for the packet-level trace replay cross-validation."""

import pytest

from repro.core import replay_zipf_stream
from repro.workloads import AlexaWorkload, WorkloadParams


@pytest.fixture(scope="module")
def workload():
    return AlexaWorkload(60, WorkloadParams(seed=191))


class TestTraceReplay:
    def test_model_matches_packet_level(self, workload):
        result = replay_zipf_stream(workload, query_count=300, seed=5)
        assert result.prediction_error <= 0.05

    def test_txt_cost_scales_with_zones_not_queries(self, workload):
        short = replay_zipf_stream(workload, query_count=150, seed=6)
        long = replay_zipf_stream(workload, query_count=600, seed=6)
        # Four times the queries, but the TXT cost grows with *distinct
        # zones*, which grow much slower under Zipf popularity.
        assert long.queries_replayed == 4 * short.queries_replayed
        assert long.measured_txt_exchanges < 2.5 * short.measured_txt_exchanges

    def test_deterministic(self, workload):
        a = replay_zipf_stream(workload, query_count=200, seed=9)
        b = replay_zipf_stream(workload, query_count=200, seed=9)
        assert a == b

    def test_distinct_zone_accounting(self, workload):
        result = replay_zipf_stream(workload, query_count=300, seed=5)
        assert result.distinct_zones <= len(workload)
        assert result.predicted_txt_exchanges <= result.distinct_zones
