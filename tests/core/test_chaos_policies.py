"""Acceptance: one scripted registry outage, three resolver behaviours
driven purely by configuration — with distinct Case-2 exposure — and
bit-identical captures for identical seeds and plans."""

import pytest

from repro.core import (
    registry_outage_scenario,
    run_chaos_cell,
    run_chaos_matrix,
)
from repro.dnscore import RCode
from repro.resolver import DlvOutagePolicy, correct_bind_config
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams

DOMAINS = 25
WORKLOAD = AlexaWorkload(DOMAINS, WorkloadParams(seed=81))
NAMES = [spec.name for spec in WORKLOAD.domains]


def make_universe():
    return Universe(
        WORKLOAD.domains,
        UniverseParams(
            modulus_bits=256,
            registry_filler=tuple(WORKLOAD.registry_filler(200)),
        ),
    )


POLICIES = {
    "insecure-fallback": correct_bind_config(),
    "fallback+holddown": correct_bind_config(dlv_fail_holddown=600.0),
    "strict-servfail": correct_bind_config(
        dlv_outage_policy=DlvOutagePolicy.SERVFAIL
    ),
    "disable-after-3": correct_bind_config(
        dlv_outage_policy=DlvOutagePolicy.DISABLE_AFTER_N,
        dlv_disable_threshold=3,
    ),
}


@pytest.fixture(scope="module")
def outage_reports():
    scenarios = {"registry-servfail": registry_outage_scenario(rcode=RCode.SERVFAIL)}
    reports = run_chaos_matrix(make_universe, NAMES, scenarios, POLICIES)
    return {report.policy: report for report in reports}


class TestPolicySpread:
    def test_three_distinct_behaviours_from_config_alone(self, outage_reports):
        fallback = outage_reports["insecure-fallback"]
        strict = outage_reports["strict-servfail"]
        disable = outage_reports["disable-after-3"]
        # 1. Insecure fallback: availability preserved, nothing secure.
        assert fallback.servfail == 0
        assert fallback.result.authenticated_answers == 0
        # 2. Strict: refuses to answer what it cannot conclude.
        assert strict.servfail > 0
        assert strict.servfail > fallback.servfail
        assert strict.noerror < fallback.noerror
        # 3. Auto-disable: keeps answering, turns look-aside off.
        assert disable.servfail == 0
        assert disable.lookaside_disabled
        assert disable.lookaside_skipped > 0

    def test_case2_exposure_differs_across_policies(self, outage_reports):
        fallback = outage_reports["insecure-fallback"]
        holddown = outage_reports["fallback+holddown"]
        disable = outage_reports["disable-after-3"]
        exposures = {
            fallback.case2_queries,
            holddown.case2_queries,
            disable.case2_queries,
        }
        assert len(exposures) == 3
        # Hold-down bounds exposure to one probe per window; the disable
        # threshold bounds it to N probes ever; plain fallback re-leaks
        # on every resolution.
        assert holddown.case2_queries < disable.case2_queries
        assert disable.case2_queries < fallback.case2_queries

    def test_holddown_suppresses_registry_traffic(self, outage_reports):
        holddown = outage_reports["fallback+holddown"]
        fallback = outage_reports["insecure-fallback"]
        assert holddown.lookaside_skipped > 0
        assert (
            holddown.registry_queries_delivered
            < fallback.registry_queries_delivered
        )


class TestFaultFreeEquivalence:
    def test_policies_are_free_when_healthy(self):
        reports = run_chaos_matrix(make_universe, NAMES, {"none": None}, POLICIES)
        profiles = {
            (r.noerror, r.servfail, r.case2_queries, r.lookaside_skipped)
            for r in reports
        }
        assert len(profiles) == 1
        assert all(not r.lookaside_disabled for r in reports)


class TestDeterminism:
    @staticmethod
    def _run_once():
        universe = make_universe()
        report = run_chaos_cell(
            universe,
            POLICIES["disable-after-3"],
            NAMES,
            scenario=registry_outage_scenario(rcode=RCode.SERVFAIL),
            scenario_label="registry-servfail",
            policy_label="disable-after-3",
        )
        return report, universe.capture.export_rows()

    def test_identical_seed_and_plan_identical_capture(self):
        first_report, first_rows = self._run_once()
        second_report, second_rows = self._run_once()
        assert first_rows == second_rows
        assert first_report.case2_queries == second_report.case2_queries
        assert first_report.servfail == second_report.servfail

    def test_black_hole_variant_changes_capture_but_stays_deterministic(self):
        def run(rcode):
            universe = make_universe()
            run_chaos_cell(
                universe,
                POLICIES["insecure-fallback"],
                NAMES,
                scenario=registry_outage_scenario(rcode=rcode),
                scenario_label="x",
                policy_label="y",
            )
            return universe.capture.export_rows()

        assert run(None) == run(None)
        assert run(None) != run(RCode.SERVFAIL)
