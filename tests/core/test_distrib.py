"""The distributed sweep layer: lease discipline, dead-worker
takeover, fencing, and the chaos acceptance scenario — 3 workers drain
one sweep, one is SIGKILLed mid-cell (its lease taken over after TTL
expiry), one lease file is corrupted, and the merged result is still
byte-identical to the serial reference across 3 seeds, with zero
leaked lease files and no hung children.
"""

import functools
import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core import (
    DistributedExecutor,
    Fenced,
    ResultStore,
    SerialExecutor,
    SweepManifest,
    WorkerFault,
    claim_cell,
    collect_sweep,
    load_sweep_manifest,
    release_lease,
    renew_lease,
    result_fingerprint,
    run_sharded_experiment,
    run_stored_sweep,
    run_worker,
    spawn_worker_process,
    standard_universe_factory,
    standard_workload,
    write_sweep_manifest,
)
from repro.core.distrib import Lease, read_lease
from repro.core.metrics import MetricsRegistry
from repro.resolver import correct_bind_config

DOMAINS = 12
FILLER = 150
SHARDS = 3
SEEDS = (2016, 2017, 2018)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAVE_FORK, reason="needs the fork start method"
)


def _reference(seed):
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=seed
    )
    names = standard_workload(DOMAINS, seed=seed).names(DOMAINS)
    return run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=SHARDS,
        executor=SerialExecutor(),
    )


def _manifest(seed):
    return SweepManifest(
        sizes=(DOMAINS,), filler_count=FILLER, seed=seed, shards=SHARDS
    )


def _no_hung_children():
    for child in multiprocessing.active_children():
        child.join(timeout=5)
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Lease primitives
# ----------------------------------------------------------------------

class TestLease:
    def test_fresh_claim_and_mutual_exclusion(self, tmp_path):
        path = tmp_path / "cell.lease"
        first = claim_cell(path, "cell", "alice", ttl=10.0)
        assert first is not None and first.how == "fresh"
        assert first.lease.token == 1 and first.lease.owner == "alice"
        # A live lease repels every other claimant.
        assert claim_cell(path, "cell", "bob", ttl=10.0) is None

    def test_takeover_after_expiry_bumps_fencing_token(self, tmp_path):
        clock = iter([100.0, 200.0, 200.0, 200.0]).__next__
        path = tmp_path / "cell.lease"
        first = claim_cell(path, "cell", "alice", ttl=10.0, clock=clock)
        taken = claim_cell(path, "cell", "bob", ttl=10.0, clock=clock)
        assert taken is not None and taken.how == "takeover"
        assert taken.lease.token == first.lease.token + 1
        assert taken.lease.takeovers == 1
        assert taken.lease.nonce != first.lease.nonce

    def test_corrupt_lease_is_taken_over(self, tmp_path):
        path = tmp_path / "cell.lease"
        path.write_text("{this is not a lease")
        taken = claim_cell(path, "cell", "bob", ttl=10.0)
        assert taken is not None and taken.how == "corrupt"
        assert taken.lease.token == 1 and taken.lease.takeovers == 1

    def test_renew_refreshes_heartbeat(self, tmp_path):
        path = tmp_path / "cell.lease"
        claim = claim_cell(
            path, "cell", "alice", ttl=10.0, clock=lambda: 100.0
        )
        renewed = renew_lease(path, claim.lease, clock=lambda: 105.0)
        assert renewed.heartbeat == 105.0
        on_disk = read_lease(path)
        assert on_disk.heartbeat == 105.0
        assert on_disk.same_claim(claim.lease)

    def test_renew_after_takeover_is_fenced(self, tmp_path):
        clock = iter([100.0, 200.0, 200.0, 200.0]).__next__
        path = tmp_path / "cell.lease"
        old = claim_cell(path, "cell", "alice", ttl=10.0, clock=clock)
        claim_cell(path, "cell", "bob", ttl=10.0, clock=clock)
        with pytest.raises(Fenced):
            renew_lease(path, old.lease, clock=lambda: 201.0)

    def test_release_only_own_claim(self, tmp_path):
        clock = iter([100.0, 200.0, 200.0, 200.0]).__next__
        path = tmp_path / "cell.lease"
        old = claim_cell(path, "cell", "alice", ttl=10.0, clock=clock)
        new = claim_cell(path, "cell", "bob", ttl=10.0, clock=clock)
        # The fenced-out owner cannot release the new owner's claim...
        assert release_lease(path, old.lease) is False
        assert path.exists()
        # ...the real owner can.
        assert release_lease(path, new.lease) is True
        assert not path.exists()

    def test_lease_json_round_trip(self, tmp_path):
        lease = Lease(
            cell="abc",
            owner="w0",
            nonce="w0:1:1",
            token=3,
            ttl=5.0,
            acquired=1.0,
            heartbeat=2.0,
            takeovers=2,
        )
        assert Lease.from_json(lease.to_json()) == lease
        assert lease.expired(now=7.1) and not lease.expired(now=6.9)


# ----------------------------------------------------------------------
# DistributedExecutor: Executor-protocol byte-identity
# ----------------------------------------------------------------------

def _task(value):
    return value * 3


class TestDistributedExecutor:
    def test_plain_run_matches_serial(self):
        tasks = [functools.partial(_task, i) for i in range(7)]
        executor = DistributedExecutor(workers=3, ttl=2.0)
        assert executor.run(tasks) == SerialExecutor().run(tasks)
        assert executor.leaked_leases == 0
        _no_hung_children()

    def test_byte_identity_through_run_stored_sweep(self, tmp_path):
        """The headline protocol claim: run_stored_sweep gains
        lease-coordinated workers just by passing the executor."""
        seed = SEEDS[0]
        factory = standard_universe_factory(
            DOMAINS, filler_count=FILLER, workload_seed=seed
        )
        names = standard_workload(DOMAINS, seed=seed).names(DOMAINS)
        metrics = MetricsRegistry()
        outcome = run_stored_sweep(
            factory,
            correct_bind_config(),
            names,
            seed=seed,
            shards=SHARDS,
            store=ResultStore(tmp_path / "store"),
            executor=DistributedExecutor(workers=2, ttl=5.0),
            metrics=metrics,
        )
        assert outcome.complete and outcome.cells_rerun == SHARDS
        assert result_fingerprint(outcome.result) == result_fingerprint(
            _reference(seed)
        )
        _no_hung_children()

    @needs_fork
    def test_sigkilled_worker_cell_is_taken_over(self):
        tasks = [functools.partial(_task, i) for i in range(6)]
        executor = DistributedExecutor(
            workers=3,
            ttl=0.6,
            worker_faults={0: WorkerFault(die_after_claims=1)},
        )
        results, quarantined, health = executor.run_with_quarantine(tasks)
        assert results == [i * 3 for i in range(6)]
        assert quarantined == []
        assert health.worker_lost >= 1
        assert executor.stats.takeovers >= 1
        assert executor.leaked_leases == 0
        _no_hung_children()

    @needs_fork
    def test_poison_task_quarantined_not_fatal(self):
        def boom():
            raise ValueError("poison")

        tasks = [functools.partial(_task, 0), boom, functools.partial(_task, 2)]
        executor = DistributedExecutor(workers=2, ttl=2.0, retries=1)
        results, quarantined, health = executor.run_with_quarantine(tasks)
        assert results[0] == 0 and results[2] == 6 and results[1] is None
        assert len(quarantined) == 1 and quarantined[0].index == 1
        assert health.quarantined == 1
        # fail-fast protocol face raises instead.
        with pytest.raises(RuntimeError):
            DistributedExecutor(workers=2, ttl=2.0, retries=0).run(tasks)
        _no_hung_children()

    def test_metrics_emission_vocabulary(self):
        tasks = [functools.partial(_task, i) for i in range(3)]
        executor = DistributedExecutor(workers=2, ttl=2.0)
        executor.run(tasks)
        metrics = MetricsRegistry()
        executor.emit(metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["distrib.claims"] >= 3
        assert counters["distrib.committed"] == 3
        assert "executor.lease_claims" in counters
        assert "executor.lease_takeovers" in counters


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------

class TestManifest:
    def test_round_trip_and_idempotent_write(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        manifest = _manifest(SEEDS[0])
        path = write_sweep_manifest(store, manifest)
        assert path.exists()
        # Idempotent for the identical manifest...
        write_sweep_manifest(store, manifest)
        assert load_sweep_manifest(store) == manifest
        # ...refused for a different one.
        with pytest.raises(Exception):
            write_sweep_manifest(store, _manifest(SEEDS[1]))

    def test_unknown_config_name_is_refused(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        bad = SweepManifest(
            sizes=(4,), filler_count=10, config_name="no_such_config"
        )
        write_sweep_manifest(store, bad)
        with pytest.raises(Exception):
            load_sweep_manifest(store).config()

    def test_cells_are_deterministic_across_processes(self, tmp_path):
        """Two independent derivations of the cell set agree digest for
        digest — the property multi-host claiming rests on."""
        manifest = _manifest(SEEDS[0])
        once = [cell.key.digest() for cell in manifest.cells()]
        again = [cell.key.digest() for cell in manifest.cells()]
        assert once == again and len(once) == SHARDS

    def test_missing_manifest_is_a_clear_error(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(Exception, match="manifest"):
            load_sweep_manifest(store)


# ----------------------------------------------------------------------
# Workers over the shared store
# ----------------------------------------------------------------------

class TestSweepWorkers:
    def test_single_worker_drains_and_matches_reference(self, tmp_path):
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))
        report = run_worker(tmp_path / "store", "w0", ttl=5.0)
        assert report.stats.committed == SHARDS
        outcome = collect_sweep(store, run_missing=False)
        assert outcome.cells_reused == SHARDS
        assert result_fingerprint(outcome.result) == result_fingerprint(
            _reference(seed)
        )

    def test_second_worker_finds_nothing_to_do(self, tmp_path):
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))
        run_worker(tmp_path / "store", "w0", ttl=5.0)
        report = run_worker(tmp_path / "store", "w1", ttl=5.0)
        assert report.stats.committed == 0
        assert report.stats.claims == 0

    def test_zombie_commit_is_fenced_no_op(self, tmp_path):
        """A worker that stalls past its TTL loses the cell; its late
        commit is skipped, and a fresh drain completes the sweep."""
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))
        manifest = load_sweep_manifest(store)
        cell = manifest.cells()[0]
        digest = cell.key.digest()
        lease_path = store.lease_path_for(digest)

        # The zombie claims, then silently loses the lease to a peer.
        zombie = claim_cell(lease_path, digest, "zombie", ttl=0.1)
        time.sleep(0.25)
        peer = claim_cell(lease_path, digest, "peer", ttl=30.0)
        assert peer is not None and peer.how == "takeover"

        # The zombie's own drain pass must now detect the fence.
        with pytest.raises(Fenced):
            renew_lease(lease_path, zombie.lease)
        assert release_lease(lease_path, zombie.lease) is False

        # The peer's claim still stands and the board drains normally.
        assert read_lease(lease_path).same_claim(peer.lease)
        release_lease(lease_path, peer.lease)
        report = run_worker(tmp_path / "store", "w1", ttl=5.0)
        assert report.stats.committed == SHARDS

    def test_stalled_worker_end_to_end_fence(self, tmp_path):
        """WorkerFault stall knob: the worker holds a lease without
        heartbeating for longer than the TTL while a live peer drains
        everything — the stalled worker's commit must be fenced or a
        detected duplicate, never a conflict."""
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))

        peer = spawn_worker_process(
            tmp_path / "store", "peer", ttl=0.4, poll_interval=0.05
        )
        try:
            report = run_worker(
                tmp_path / "store",
                "zombie",
                ttl=0.4,
                fault=WorkerFault(stall_after_claims=1, stall_seconds=1.5),
            )
        finally:
            peer.wait(timeout=120)
            peer.stdout.close()
            peer.stderr.close()
        assert peer.returncode == 0
        assert report.stats.conflicts == 0
        outcome = collect_sweep(store, run_missing=False)
        assert outcome.cells_reused == SHARDS
        assert result_fingerprint(outcome.result) == result_fingerprint(
            _reference(seed)
        )
        assert list(Path(tmp_path / "store").glob("*/*.lease")) == []

    def test_takeover_ceiling_quarantines_poison_cell(self, tmp_path):
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))
        manifest = load_sweep_manifest(store)
        victim = manifest.cells()[1]
        digest = victim.key.digest()
        lease_path = store.lease_path_for(digest)
        # Fake a cell that has already churned through its owners: an
        # expired lease carrying takeovers at the ceiling.
        dead = Lease(
            cell=digest,
            owner="ghost",
            nonce="ghost:1:1",
            token=9,
            ttl=0.01,
            acquired=0.0,
            heartbeat=0.0,
            takeovers=3,
        )
        lease_path.parent.mkdir(parents=True, exist_ok=True)
        lease_path.write_text(dead.to_json())

        report = run_worker(tmp_path / "store", "w0", ttl=5.0, max_takeovers=3)
        assert report.stats.quarantined == 1
        assert report.quarantined[0]["error"] == "takeover-limit"
        # The healthy cells completed; the poison cell is marked for
        # the whole fleet and surfaced by the collector.
        assert report.stats.committed == SHARDS - 1
        outcome = collect_sweep(store, run_missing=False)
        assert len(outcome.quarantined) == 1
        assert not outcome.complete
        # A later worker skips it instead of ping-ponging.
        again = run_worker(tmp_path / "store", "w1", ttl=5.0, max_takeovers=3)
        assert again.stats.claims == 0

    def test_coordinator_fallback_heals_dead_fleet(self, tmp_path):
        """collect_sweep(run_missing=True) finishes cells no worker
        drained — the coordinator's degrade-to-local path."""
        seed = SEEDS[0]
        store = ResultStore(tmp_path / "store")
        write_sweep_manifest(store, _manifest(seed))
        outcome = collect_sweep(store, run_missing=True)
        assert outcome.cells_rerun == SHARDS and outcome.cells_reused == 0
        assert result_fingerprint(outcome.result) == result_fingerprint(
            _reference(seed)
        )


# ----------------------------------------------------------------------
# The chaos acceptance scenario
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_distributed_sweep_byte_identical(tmp_path, seed):
    """3 workers, one SIGKILLed mid-cell (lease orphaned, taken over
    after TTL expiry), one corrupted lease file — merged result
    byte-identical to the serial reference, zero leaked lease files,
    no duplicate side effects, no hung children."""
    store_root = tmp_path / "store"
    store = ResultStore(store_root)
    manifest = _manifest(seed)
    write_sweep_manifest(store, manifest)
    cells = manifest.cells()
    digests = [cell.key.digest() for cell in cells]

    # 1. The doomed worker runs alone and is SIGKILLed right after its
    #    first claim — mid-cell, lease held, heartbeat silenced.
    doomed = spawn_worker_process(
        store_root,
        "doomed",
        ttl=0.5,
        poll_interval=0.05,
        extra_args=["--die-after-claims", "1"],
    )
    doomed.wait(timeout=120)
    doomed.stdout.close()
    doomed.stderr.close()
    assert doomed.returncode == -signal.SIGKILL
    orphaned = [
        digest
        for digest in digests
        if store.lease_path_for(digest).exists()
    ]
    assert len(orphaned) == 1  # exactly one cell left mid-claim
    assert not store.path_for(orphaned[0]).exists()  # and uncommitted

    # 2. Another cell's lease file is corrupted on disk (torn write /
    #    bit-rot on the shared filesystem).
    corrupt_digest = next(d for d in digests if d != orphaned[0])
    corrupt_path = store.lease_path_for(corrupt_digest)
    corrupt_path.parent.mkdir(parents=True, exist_ok=True)
    corrupt_path.write_bytes(b"\x00\xffgarbage lease\x13")

    # 3. Two survivors drain the board: the orphaned lease must be
    #    taken over after TTL expiry, the corrupt one immediately.
    survivors = [
        spawn_worker_process(
            store_root, worker_id, ttl=0.5, poll_interval=0.05
        )
        for worker_id in ("s1", "s2")
    ]
    reports = {}
    for process, worker_id in zip(survivors, ("s1", "s2")):
        process.wait(timeout=120)
        stdout = process.stdout.read()
        process.stdout.close()
        process.stderr.close()
        assert process.returncode == 0, (worker_id, stdout)

    # 4. Byte-identity with the uninterrupted serial reference.
    outcome = collect_sweep(store, run_missing=False)
    assert outcome.quarantined == []
    assert outcome.cells_reused == SHARDS  # every cell was committed
    assert result_fingerprint(outcome.result) == result_fingerprint(
        _reference(seed)
    )

    # 5. Zero leaked lease files (and no takeover-rename remnants),
    #    and the journal records the takeover of the orphaned cell.
    assert list(store_root.glob("*/*.lease")) == []
    assert list(store_root.glob("*/*.lease.stale.*")) == []
    events = store.journal().events()
    claims_by_cell = {}
    for event in events:
        if event["event"] == "claim":
            claims_by_cell.setdefault(event["cell"], []).append(event)
    # The corrupt lease was detected and taken over.
    assert any(
        event["how"] == "corrupt"
        for event in claims_by_cell[corrupt_digest]
    )
    # The orphaned cell: the doomed worker claimed it first, and a
    # survivor claimed it after TTL expiry — recorded as a takeover,
    # or as a fresh claim when both survivors raced the rename
    # arbitration (the loser's O_EXCL lands in the winner's window).
    orphan_claims = claims_by_cell[orphaned[0]]
    assert orphan_claims[0]["worker"] == "doomed"
    assert any(
        event["worker"] in ("s1", "s2") for event in orphan_claims[1:]
    )
    # No duplicate side effects: every commit event is for a distinct
    # cell (racing re-commits surface as "duplicate" events instead).
    committed_cells = [
        event["cell"] for event in events if event["event"] == "commit"
    ]
    assert len(committed_cells) == len(set(committed_cells))

    # 6. No hung children.
    _no_hung_children()


def test_run_distributed_sweep_coordinator(tmp_path):
    """The repro sweep --distributed path: coordinator writes the
    manifest, spawns workers, merges byte-identically."""
    from repro.core.distrib import run_distributed_sweep

    seed = SEEDS[0]
    outcome = run_distributed_sweep(
        tmp_path / "store",
        workers=2,
        sizes=(DOMAINS,),
        filler_count=FILLER,
        seed=seed,
        shards=SHARDS,
        ttl=5.0,
        poll_interval=0.05,
    )
    assert outcome.complete
    assert set(outcome.worker_exits.values()) == {0}
    assert outcome.cells_reused + outcome.cells_rerun == SHARDS
    assert result_fingerprint(outcome.result) == result_fingerprint(
        _reference(seed)
    )
    assert list((tmp_path / "store").glob("*/*.lease")) == []
    _no_hung_children()
