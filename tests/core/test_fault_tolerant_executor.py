"""The fault-tolerant executor: failure context, dead-worker
detection, timeouts, retries with deterministic backoff, quarantine,
and the no-hung-processes guarantee."""

import multiprocessing
import os
import signal

import pytest

from repro.core import (
    CellTimeout,
    ExecutorHealth,
    FaultInjection,
    FaultTolerantExecutor,
    MultiprocessingExecutor,
    QuarantineError,
    TaskFailure,
    WorkerLost,
    backoff_schedule,
    run_tasks_fault_tolerant,
    task_context,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

fork_only = pytest.mark.skipif(
    not HAVE_FORK, reason="needs fork start method"
)


def _ok(value):
    def task():
        return value

    return task


def _boom(message):
    def task():
        raise ValueError(message)

    return task


def _die(sig=signal.SIGKILL):
    def task():
        os.kill(os.getpid(), sig)

    return task


def _hang():
    def task():  # pragma: no cover - killed by the timeout
        import time

        time.sleep(60)

    return task


def assert_no_hung_children():
    for child in multiprocessing.active_children():
        child.join(timeout=5)
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# Pure pieces
# ----------------------------------------------------------------------

def test_backoff_schedule_is_deterministic_and_capped():
    assert backoff_schedule(0) == ()
    assert backoff_schedule(4, base=0.05, factor=2.0, cap=2.0) == (
        0.05,
        0.1,
        0.2,
        0.4,
    )
    assert backoff_schedule(8, base=0.5, factor=3.0, cap=2.0)[-1] == 2.0
    # Pure: same inputs, same schedule.
    assert backoff_schedule(5) == backoff_schedule(5)


def test_task_context_names_shard_and_explicit_cells():
    task = _ok(1)
    task.cell_context = "chaos 'dlv-outage' × 'strict'"
    assert task_context(task, 3) == "cell 3 [chaos 'dlv-outage' × 'strict']"
    assert "cell 0" in task_context(_ok(1), 0)


def test_exception_carries_cell_context():
    executor = FaultTolerantExecutor(retries=0, keep_going=False)
    failing = _boom("bad cell")
    failing.cell_context = "shard=2 seed=2017 config='bind'"
    with pytest.raises(TaskFailure) as info:
        executor.run([_ok(1), failing, _ok(3)])
    assert "shard=2 seed=2017" in str(info.value)
    assert "bad cell" in str(info.value)
    assert info.value.kind == "exception"


def test_keep_going_quarantines_and_returns_health():
    executor = FaultTolerantExecutor(retries=0, keep_going=True)
    failing = _boom("poison")
    results, quarantined, health = executor.run_with_quarantine(
        [_ok("a"), failing, _ok("c")]
    )
    assert results == ["a", None, "c"]
    assert [cell.index for cell in quarantined] == [1]
    assert quarantined[0].error == "exception"
    assert health.cells_ok == 2 and health.quarantined == 1
    # The protocol-compatible run() cannot return partial lists.
    with pytest.raises(QuarantineError):
        executor.run([_ok("a"), failing])


# ----------------------------------------------------------------------
# Process isolation: dead workers, timeouts, crash injection
# ----------------------------------------------------------------------

@fork_only
def test_killed_worker_raises_typed_worker_lost():
    executor = FaultTolerantExecutor(
        retries=0, keep_going=False, isolate=True
    )
    with pytest.raises(WorkerLost) as info:
        executor.run([_ok(1), _die(signal.SIGKILL)])
    assert info.value.kind == "worker-lost"
    assert info.value.exitcode == -signal.SIGKILL
    assert "killed by signal 9" in str(info.value)
    assert_no_hung_children()


@fork_only
def test_killed_worker_is_quarantined_in_keep_going_mode():
    executor = FaultTolerantExecutor(
        retries=0, keep_going=True, isolate=True
    )
    results, quarantined, health = executor.run_with_quarantine(
        [_ok("x"), _die(), _ok("y")]
    )
    assert results == ["x", None, "y"]
    assert quarantined[0].error == "worker-lost"
    assert health.worker_lost == 1
    assert_no_hung_children()


@fork_only
def test_hung_worker_is_terminated_on_timeout():
    executor = FaultTolerantExecutor(
        retries=0, keep_going=False, timeout=0.5
    )
    with pytest.raises(CellTimeout) as info:
        executor.run([_hang()])
    assert info.value.kind == "timeout"
    assert_no_hung_children()


@fork_only
def test_hung_worker_quarantined_keep_going():
    executor = FaultTolerantExecutor(
        retries=0, keep_going=True, timeout=0.5
    )
    results, quarantined, health = executor.run_with_quarantine(
        [_ok(7), _hang()]
    )
    assert results == [7, None]
    assert quarantined[0].error == "timeout"
    assert health.timeouts == 1
    assert_no_hung_children()


@fork_only
def test_crash_once_injection_succeeds_on_retry(tmp_path):
    injection = FaultInjection(
        marker_dir=str(tmp_path), crash_once_cells=frozenset({1})
    )
    tasks = [
        injection.wrap(index, task)
        for index, task in enumerate([_ok("a"), _ok("b"), _ok("c")])
    ]
    executor = FaultTolerantExecutor(
        retries=2, keep_going=True, isolate=True, backoff_base=0.01
    )
    results, quarantined, health = executor.run_with_quarantine(tasks)
    assert results == ["a", "b", "c"]
    assert quarantined == []
    assert health.worker_lost == 1
    assert health.retries == 1
    assert health.worker_restarts >= 1
    assert (tmp_path / "crash-once-1").exists()
    assert_no_hung_children()


@fork_only
def test_poison_cell_exhausts_retries_and_is_quarantined():
    executor = FaultTolerantExecutor(
        retries=2, keep_going=True, isolate=True, backoff_base=0.01
    )
    results, quarantined, health = executor.run_with_quarantine(
        [_ok(1), _die(signal.SIGKILL)]
    )
    assert results == [1, None]
    assert quarantined[0].attempts == 3  # initial try + 2 retries
    assert health.retries == 2
    assert health.worker_lost == 3
    assert_no_hung_children()


@fork_only
def test_parallel_run_preserves_task_order():
    executor = FaultTolerantExecutor(workers=4, retries=0)
    values = list(range(16))
    assert executor.run([_ok(v) for v in values]) == values
    assert_no_hung_children()


# ----------------------------------------------------------------------
# The hardened MultiprocessingExecutor and the helper entrypoint
# ----------------------------------------------------------------------

def test_multiprocessing_executor_surfaces_context():
    executor = MultiprocessingExecutor(workers=2)
    failing = _boom("from the pool")
    failing.cell_context = "shard=1 seed=2016"
    with pytest.raises(TaskFailure) as info:
        executor.run([_ok(1), failing, _ok(3)])
    assert "shard=1 seed=2016" in str(info.value)
    assert "from the pool" in str(info.value)
    assert_no_hung_children()


@fork_only
def test_multiprocessing_executor_killed_worker_does_not_hang():
    executor = MultiprocessingExecutor(workers=2)
    with pytest.raises(WorkerLost):
        executor.run([_ok(1), _die(), _ok(3)])
    assert_no_hung_children()


def test_run_tasks_fault_tolerant_keep_going_collects():
    results, quarantined, health = run_tasks_fault_tolerant(
        [_ok(1), _boom("nope"), _ok(3)], parallelism=1, retries=0
    )
    assert results == [1, None, 3]
    assert len(quarantined) == 1
    assert isinstance(health, ExecutorHealth)


def test_run_tasks_fault_tolerant_fail_fast():
    with pytest.raises(TaskFailure):
        run_tasks_fault_tolerant(
            [_ok(1), _boom("nope")], parallelism=1, retries=0, fail_fast=True
        )


def test_run_tasks_fault_tolerant_on_result_streams():
    seen = []
    run_tasks_fault_tolerant(
        [_ok("a"), _ok("b")],
        parallelism=1,
        on_result=lambda index, result: seen.append((index, result)),
    )
    assert sorted(seen) == [(0, "a"), (1, "b")]
