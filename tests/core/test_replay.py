"""Population replay: serial equivalence, determinism, streaming algebra.

The headline contract is **byte-identity**: routing an unmodified
:class:`LeakageExperiment` through the event scheduler as a single
session must produce the same result fingerprint and the same trace
JSONL as the plain serial path.  That is what certifies the scheduler
as a refactor of the simulation's control flow, not a fork of its
semantics.

The second contract is **streaming equals batch**: the
:class:`ReplayWindow` monoid laws (associativity, commutativity,
identity) and the window fold reproducing the overall totals, plus
:class:`StreamingCapture` counting exactly what the retaining
:class:`Capture` retains.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.core import (
    PopulationReplayResult,
    ReplayParams,
    ReplayWindow,
    Tracer,
    empty_replay_window,
    export_traces_jsonl,
    merge_replay_windows,
    result_fingerprint,
    run_experiment_in_session,
    run_population_replay,
    standard_experiment,
)
from repro.netsim import Capture, StreamingCapture
from repro.resolver import correct_bind_config


SMALL = ReplayParams(
    users=4, queries=120, domains=30, registry_filler=100,
    window_seconds=200.0, max_concurrent=16, seed=7,
)


# ----------------------------------------------------------------------
# Serial equivalence (the byte-identity contract)
# ----------------------------------------------------------------------


def build_experiment(traced=False):
    from repro.core import standard_universe, standard_workload
    from repro.core.experiment import LeakageExperiment

    workload = standard_workload(25, seed=11)
    universe = standard_universe(workload, filler_count=80)
    tracer = Tracer(universe.clock) if traced else None
    experiment = LeakageExperiment(
        universe, correct_bind_config(), tracer=tracer
    )
    return experiment, tracer


def experiment_names():
    from repro.core import standard_workload

    return standard_workload(25, seed=11).names(25)


def test_single_session_run_is_byte_identical_to_serial():
    serial, _ = build_experiment()
    names = experiment_names()
    serial_result = serial.run(names)

    scheduled, _ = build_experiment()
    scheduled_result = run_experiment_in_session(scheduled, names)

    assert result_fingerprint(scheduled_result) == result_fingerprint(
        serial_result
    )


def test_single_session_trace_jsonl_is_byte_identical():
    serial, _ = build_experiment(traced=True)
    names = experiment_names()
    serial_result = serial.run(names)
    serial_jsonl = export_traces_jsonl(serial_result.traces)

    scheduled, _ = build_experiment(traced=True)
    scheduled_result = run_experiment_in_session(scheduled, names)
    scheduled_jsonl = export_traces_jsonl(scheduled_result.traces)

    assert serial_jsonl  # non-trivial comparison
    assert scheduled_jsonl == serial_jsonl


# ----------------------------------------------------------------------
# Population replay behaviour
# ----------------------------------------------------------------------


def test_population_replay_is_deterministic():
    first = run_population_replay(SMALL)
    second = run_population_replay(SMALL)
    assert first.windows == second.windows
    assert first.overall == second.overall
    assert dataclasses.asdict(first.scheduler) == dataclasses.asdict(
        second.scheduler
    )


def test_population_replay_completes_every_query():
    result = run_population_replay(SMALL)
    assert isinstance(result, PopulationReplayResult)
    assert result.overall.queries == SMALL.queries
    assert result.overall.sessions_started == SMALL.queries
    assert result.overall.sessions_completed == SMALL.queries
    assert result.scheduler.completed == SMALL.queries
    assert result.overall.end > result.overall.start
    assert result.simulated_qps > 0


def test_population_replay_observes_leakage_online():
    """Cold shared cache: the first resolutions leak Case-2 DLV queries
    to the registry, and the streaming classifier must catch them at the
    wire without retaining packets."""
    result = run_population_replay(SMALL)
    assert result.overall.dlv_queries > 0
    assert result.overall.case2_queries > 0
    assert len(result.overall.leaked_domains) > 0
    assert result.overall.case2_queries <= result.overall.dlv_queries
    # Shared positive/negative caches: later windows stop leaking.
    assert result.overall.cache_hits > 0


def test_window_fold_reproduces_overall():
    result = run_population_replay(SMALL)
    assert len(result.windows) >= 2
    folded = empty_replay_window()
    for window in result.windows:
        folded = merge_replay_windows(folded, window)
    assert folded == result.overall
    # Windows tile simulated time in order.
    for earlier, later in zip(result.windows, result.windows[1:]):
        assert earlier.end == later.start


def test_admission_cap_shapes_the_replay():
    capped = dataclasses.replace(SMALL, max_concurrent=1)
    result = run_population_replay(capped)
    assert result.scheduler.peak_active == 1
    assert result.overall.queries == capped.queries
    assert result.scheduler.threads_created == 1


def test_user_count_drives_contention():
    """More users → same shared cache, more distinct profiles → the
    leak set grows (each profile leaks its own uncached domains)."""
    small = run_population_replay(dataclasses.replace(SMALL, users=2))
    large = run_population_replay(dataclasses.replace(SMALL, users=12))
    assert len(large.overall.leaked_domains) >= len(
        small.overall.leaked_domains
    )


# ----------------------------------------------------------------------
# ReplayWindow monoid laws
# ----------------------------------------------------------------------

dyadic = st.integers(min_value=0, max_value=1 << 16).map(lambda k: k / 256.0)
counts = st.integers(min_value=0, max_value=1000)
domains = st.frozensets(
    st.sampled_from(["a.com", "b.net", "c.org", "d.io", "e.de"]), max_size=5
)


@st.composite
def replay_windows(draw):
    start = draw(dyadic)
    return ReplayWindow(
        start=start,
        end=start + draw(dyadic),
        queries=draw(counts),
        failures=draw(counts),
        dlv_queries=draw(counts),
        case1_queries=draw(counts),
        case2_queries=draw(counts),
        leaked_domains=draw(domains),
        cache_hits=draw(counts),
        cache_misses=draw(counts),
        packets=draw(counts),
        wire_bytes=draw(counts),
        dropped=draw(counts),
        latency_sum=draw(dyadic),
        latency_max=draw(dyadic),
        sessions_started=draw(counts),
        sessions_completed=draw(counts),
    )


@settings(max_examples=80, deadline=None)
@given(a=replay_windows(), b=replay_windows(), c=replay_windows())
def test_merge_replay_windows_is_associative_and_commutative(a, b, c):
    merge = merge_replay_windows
    assert merge(merge(a, b), c) == merge(a, merge(b, c))
    assert merge(a, b) == merge(b, a)


@settings(max_examples=40, deadline=None)
@given(w=replay_windows())
def test_empty_replay_window_is_identity(w):
    empty = empty_replay_window()
    assert merge_replay_windows(empty, w) == w
    assert merge_replay_windows(w, empty) == w


# ----------------------------------------------------------------------
# StreamingCapture counts what Capture retains
# ----------------------------------------------------------------------


def test_streaming_capture_matches_retaining_capture():
    experiment, _ = build_experiment()
    names = experiment_names()
    experiment.run(names)
    retained = experiment.universe.network.capture
    assert isinstance(retained, Capture)
    assert len(retained) > 0

    streaming_experiment, _ = build_experiment()
    observed = []
    streaming = StreamingCapture(observer=observed.append)
    streaming_experiment.universe.network.capture = streaming
    streaming_experiment.run(names)

    assert streaming.packets == len(retained)
    assert len(streaming) == len(retained)
    assert streaming.total_bytes() == retained.total_bytes()
    assert streaming.query_count() == retained.query_count()
    assert streaming.query_type_histogram() == retained.query_type_histogram()
    assert len(observed) == streaming.packets
    # Nothing is retained: record-level views see an empty log.
    assert list(streaming) == []
    assert streaming.queries() == []
