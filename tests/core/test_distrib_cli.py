"""The CLI side of distributed sweeps: the exit-code contract
(0 ok / 1 corruption-or-incomplete / 2 usage / 3 quarantine), the
``repro work`` verb, and pickle round-trips for the failure types
that cross process boundaries."""

import json
import pickle

import pytest

from repro.cli import build_parser, main
from repro.core import (
    CellTimeout,
    ResultStore,
    SweepManifest,
    TaskFailure,
    WorkerLost,
    write_sweep_manifest,
)

DOMAINS = 8
FILLER = 100
SEED = 2016


def _seed_store(root, shards=1):
    store = ResultStore(root)
    manifest = SweepManifest(
        sizes=(DOMAINS,), filler_count=FILLER, seed=SEED, shards=shards
    )
    write_sweep_manifest(store, manifest)
    return store, manifest


# ----------------------------------------------------------------------
# Failure types must survive the pickle boundary intact
# ----------------------------------------------------------------------

class TestFailurePickling:
    """Workers raise these in child processes; the parent re-raises
    them.  RuntimeError's default reduce replays the *rendered*
    message into the constructor, which would mangle the custom
    ``(context, detail)`` signatures — hence ``__reduce__``."""

    def test_task_failure_roundtrip(self):
        original = TaskFailure("cell 3 [shard 3/4]", "Boom\n  traceback")
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is TaskFailure
        assert clone.context == original.context
        assert clone.detail == original.detail
        assert str(clone) == str(original)

    def test_worker_lost_roundtrip(self):
        for exitcode in (-9, 1, None):
            original = WorkerLost("cell 0 [shard 0/2]", exitcode)
            clone = pickle.loads(pickle.dumps(original))
            assert type(clone) is WorkerLost
            assert clone.exitcode == exitcode
            assert clone.context == original.context
            assert str(clone) == str(original)

    def test_cell_timeout_roundtrip(self):
        original = CellTimeout("cell 1 [shard 1/2]", 12.5)
        clone = pickle.loads(pickle.dumps(original))
        assert type(clone) is CellTimeout
        assert clone.timeout == 12.5
        assert str(clone) == str(original)

    def test_kind_survives(self):
        for original in (
            TaskFailure("c", "d"),
            WorkerLost("c", -9),
            CellTimeout("c", 1.0),
        ):
            clone = pickle.loads(pickle.dumps(original))
            assert clone.kind == original.kind


# ----------------------------------------------------------------------
# The exit-code contract in the parser surface
# ----------------------------------------------------------------------

def _subparser(name):
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        return action.choices[name]
    raise AssertionError("no subparsers registered")


class TestExitContract:
    @pytest.mark.parametrize("verb", ["sweep", "store", "work"])
    def test_epilog_documents_the_contract(self, verb):
        text = _subparser(verb).format_help()
        assert "exit codes:" in text
        for marker in ("0  success", "1  corruption", "2  usage",
                       "3  quarantine"):
            assert marker in text, (verb, marker)

    def test_distributed_requires_store(self, capsys):
        code = main(["sweep", "--distributed", "2", "--sizes", "8"])
        assert code == 2
        assert "--store" in capsys.readouterr().err

    def test_work_requires_store_and_worker_id(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["work"])
        assert excinfo.value.code == 2


# ----------------------------------------------------------------------
# The work verb end to end (in-process)
# ----------------------------------------------------------------------

class TestWorkVerb:
    def test_clean_drain_exits_zero_with_json_report(self, tmp_path, capsys):
        _seed_store(tmp_path / "store")
        code = main([
            "work", "--store", str(tmp_path / "store"),
            "--worker-id", "w0", "--ttl", "5.0", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["worker_id"] == "w0"
        assert payload["stats"]["committed"] == 1
        assert payload["board"] == {"missing": 0, "quarantined": 0}

    def test_second_worker_is_a_noop(self, tmp_path, capsys):
        _seed_store(tmp_path / "store")
        assert main([
            "work", "--store", str(tmp_path / "store"),
            "--worker-id", "w0", "--ttl", "5.0",
        ]) == 0
        capsys.readouterr()
        code = main([
            "work", "--store", str(tmp_path / "store"),
            "--worker-id", "w1", "--ttl", "5.0", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["claims"] == 0
        assert payload["stats"]["committed"] == 0
        assert payload["board"] == {"missing": 0, "quarantined": 0}

    def test_quarantined_board_exits_three(self, tmp_path, capsys, monkeypatch):
        """A peer already quarantined a cell: this worker skips it and
        reports partial output per the contract."""
        from repro.core import distrib

        store, manifest = _seed_store(tmp_path / "store")
        digest = manifest.cells()[0].key.digest()
        marker = store.quarantine_path_for(digest)
        distrib._write_marker(
            marker,
            {"cell": digest, "context": "poison", "attempts": 3,
             "error": "exception", "detail": "injected"},
        )
        code = main([
            "work", "--store", str(tmp_path / "store"),
            "--worker-id", "w0", "--ttl", "5.0", "--json",
        ])
        assert code == 3
        payload = json.loads(capsys.readouterr().out)
        assert payload["board"] == {"missing": 0, "quarantined": 1}

    def test_incomplete_board_exits_one(self, tmp_path, capsys, monkeypatch):
        """If the board is left with unrun, unquarantined cells (the
        judging is against the whole board, not this worker), the
        contract says 1."""
        from repro.core import distrib
        from repro.core.distrib import DistribStats, WorkerReport

        _seed_store(tmp_path / "store")
        monkeypatch.setattr(
            distrib,
            "run_worker",
            lambda *args, **kwargs: WorkerReport(
                worker_id="w0", cells_seen=1, stats=DistribStats()
            ),
        )
        code = main([
            "work", "--store", str(tmp_path / "store"),
            "--worker-id", "w0", "--json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["board"]["missing"] == 1
