"""Tests for the dictionary attack on hashed DLV."""

import pytest

from repro.core import DictionaryAttack, LeakageExperiment, coverage_curve
from repro.dnscore import Name
from repro.resolver import correct_bind_config
from repro.core import resolver_config_for, Remedy, universe_params_for
from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams


@pytest.fixture(scope="module")
def hashed_run():
    workload = AlexaWorkload(40, WorkloadParams(seed=44))
    params = UniverseParams(
        modulus_bits=256,
        registry_hashed=True,
        registry_filler=tuple(workload.registry_filler(300)),
    )
    universe = Universe(workload.domains, params)
    config = resolver_config_for(Remedy.HASHED, correct_bind_config())
    experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
    result = experiment.run(workload.names(40))
    attack = DictionaryAttack(universe.registry_origin, universe.registry_address)
    return workload, universe, result, attack


class TestObservation:
    def test_digests_observed(self, hashed_run):
        workload, universe, result, attack = hashed_run
        digests = attack.observed_digest_labels(result.capture)
        assert digests
        for label in digests:
            assert all(c in "0123456789abcdef" for c in label)

    def test_digests_unique(self, hashed_run):
        _, _, result, attack = hashed_run
        digests = attack.observed_digest_labels(result.capture)
        assert len(digests) == len(set(digests))


class TestAttack:
    def test_full_dictionary_recovers_queried_domains(self, hashed_run):
        workload, _, result, attack = hashed_run
        outcome = attack.attack(result.capture, workload.names(40))
        assert outcome.recovery_rate == pytest.approx(1.0)
        recovered_names = set(outcome.recovered.values())
        assert recovered_names <= set(workload.names(40))

    def test_empty_dictionary_recovers_nothing(self, hashed_run):
        _, _, result, attack = hashed_run
        outcome = attack.attack(result.capture, [])
        assert outcome.recovered_count == 0

    def test_wrong_dictionary_recovers_nothing(self, hashed_run):
        _, _, result, attack = hashed_run
        decoys = [Name.from_text(f"decoy{i}.com") for i in range(50)]
        outcome = attack.attack(result.capture, decoys)
        assert outcome.recovered_count == 0
        assert outcome.hash_evaluations == 50

    def test_budget_limits_evaluations(self, hashed_run):
        workload, _, result, attack = hashed_run
        outcome = attack.attack(
            result.capture, workload.names(40), max_hash_evaluations=5
        )
        assert outcome.hash_evaluations <= 5
        assert outcome.recovered_count <= 5

    def test_partial_dictionary_partial_recovery(self, hashed_run):
        workload, _, result, attack = hashed_run
        half = workload.names(20)
        outcome = attack.attack(result.capture, half)
        assert 0 < outcome.recovered_count <= len(half)
        assert outcome.recovery_rate < 1.0


class TestCoverageCurve:
    def test_monotone_in_dictionary_size(self, hashed_run):
        workload, _, result, attack = hashed_run
        rows = coverage_curve(
            attack, result.capture, workload.names(40), checkpoints=(5, 20, 40)
        )
        rates = [row["recovery_rate"] for row in rows]
        assert rates == sorted(rates)
        assert rows[-1]["recovery_rate"] == pytest.approx(1.0)
