"""Tests for the authoritative server front-end."""

import pytest

from repro.crypto import KeyPool
from repro.dnscore import Message, Name, RCode, RRType, TXT
from repro.servers import AuthoritativeServer
from repro.zones import ZoneBuilder, standard_ns_hosts


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=21, pool_size=8, modulus_bits=256)


@pytest.fixture()
def server():
    com = ZoneBuilder(n("com"))
    com.with_ns(standard_ns_hosts(n("com"), ["192.0.2.1"]))
    com.delegate(n("example.com"), standard_ns_hosts(n("example.com"), ["192.0.2.9"]))
    com_zone = com.signed(POOL.keys_for_zone(n("com")))
    example = ZoneBuilder(n("example.com"))
    example.with_ns(standard_ns_hosts(n("example.com"), ["192.0.2.9"]))
    example.with_address(n("example.com"), ipv4="192.0.2.80")
    example.with_rrset(n("example.com"), RRType.TXT, [TXT(("dlv=1",))])
    example_zone = example.build()
    return AuthoritativeServer([com_zone, example_zone])


class TestRouting:
    def test_deepest_zone_wins(self, server):
        assert server.find_zone(n("example.com")).origin == n("example.com")
        assert server.find_zone(n("other.com")).origin == n("com")

    def test_unserved_name_refused(self, server):
        query = Message.make_query(1, n("example.org"), RRType.A)
        assert server.handle(query).rcode is RCode.REFUSED

    def test_duplicate_zone_rejected(self, server):
        with pytest.raises(ValueError):
            server.add_zone(server.find_zone(n("example.com")))


class TestResponses:
    def test_answer_is_authoritative(self, server):
        query = Message.make_query(2, n("example.com"), RRType.A)
        response = server.handle(query)
        assert response.rcode is RCode.NOERROR
        assert response.flags.aa
        assert response.answer[0].rtype is RRType.A

    def test_referral_is_not_authoritative(self, server):
        com = server.find_zone(n("com"))
        only_com = AuthoritativeServer([com])
        query = Message.make_query(3, n("example.com"), RRType.A)
        response = only_com.handle(query)
        assert not response.flags.aa
        assert response.find_rrsets(RRType.NS, section="authority")

    def test_nxdomain(self, server):
        query = Message.make_query(4, n("missing.example.com"), RRType.A)
        response = server.handle(query)
        assert response.rcode is RCode.NXDOMAIN

    def test_nxdomain_with_do_carries_nsec(self, server):
        query = Message.make_query(5, n("missing.com"), RRType.A, dnssec_ok=True)
        response = server.handle(query)
        assert response.find_rrsets(RRType.NSEC, section="authority")

    def test_malformed_query_formerr(self, server):
        query = Message.make_query(6, n("example.com"), RRType.A)
        response = server.handle(query.make_response())
        assert response.rcode is RCode.FORMERR


class TestZBitSignalling:
    def make_server(self, deposits):
        example = ZoneBuilder(n("example.com"))
        example.with_ns(standard_ns_hosts(n("example.com"), ["192.0.2.9"]))
        example.with_address(n("example.com"), ipv4="192.0.2.80")
        return AuthoritativeServer(
            [example.build()],
            zbit_signal=lambda qname: Name(qname.labels[-2:]) in deposits,
        )

    def test_z_bit_set_for_deposited_zone(self):
        server = self.make_server({n("example.com")})
        query = Message.make_query(7, n("example.com"), RRType.A)
        assert server.handle(query).flags.z

    def test_z_bit_clear_without_deposit(self):
        server = self.make_server(set())
        query = Message.make_query(8, n("example.com"), RRType.A)
        assert not server.handle(query).flags.z

    def test_no_signal_without_predicate(self, server):
        query = Message.make_query(9, n("example.com"), RRType.A)
        assert not server.handle(query).flags.z
