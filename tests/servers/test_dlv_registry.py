"""Tests for the DLV registry zone and server."""

import pytest

from repro.crypto import KeyPool, hash_domain_label, make_dlv, verify_ds_matches
from repro.dnscore import Message, Name, RCode, RRType, name_between
from repro.servers import DenialMode, DLVRegistryServer
from repro.zones import verify_rrset_signature
from repro.zones.zone import LookupOutcome, ZoneError


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=31, pool_size=8, modulus_bits=256)
ORIGIN = n("dlv.isc.org")


def build_registry(domains=("alpha.com", "beta.net", "gamma.org"), **kwargs):
    deposits = {n(d): POOL.keys_for_zone(n(d)) for d in domains}
    return DLVRegistryServer.build(
        origin=ORIGIN,
        keyset=POOL.keys_for_zone(ORIGIN),
        deposits=deposits,
        **kwargs,
    )


class TestDeposits:
    def test_registered_name_plain(self):
        registry = build_registry().registry
        assert registry.registered_name(n("alpha.com")) == n("alpha.com.dlv.isc.org")

    def test_registered_name_hashed(self):
        registry = build_registry(hashed=True).registry
        expected = ORIGIN.prepend(hash_domain_label(n("alpha.com")))
        assert registry.registered_name(n("alpha.com")) == expected

    def test_has_deposit(self):
        registry = build_registry().registry
        assert registry.has_deposit(n("alpha.com"))
        assert not registry.has_deposit(n("other.com"))

    def test_deposit_count(self):
        assert build_registry().registry.deposit_count() == 3

    def test_dlv_rdata_authenticates_depositor_ksk(self):
        registry = build_registry().registry
        result = registry.lookup(n("alpha.com.dlv.isc.org"), RRType.DLV)
        dlv = result.answer[0].first()
        ksk = POOL.keys_for_zone(n("alpha.com")).ksk.dnskey
        assert verify_ds_matches(n("alpha.com"), ksk, dlv)


class TestLookup:
    def test_positive_answer_with_rrsig(self):
        registry = build_registry().registry
        result = registry.lookup(
            n("alpha.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        assert result.outcome is LookupOutcome.ANSWER
        types = [rrset.rtype for rrset in result.answer]
        assert types == [RRType.DLV, RRType.RRSIG]

    def test_rrsig_verifies_with_zone_zsk(self):
        registry = build_registry().registry
        result = registry.lookup(
            n("alpha.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        dlv_rrset, rrsig_rrset = result.answer
        assert verify_rrset_signature(
            dlv_rrset, rrsig_rrset.first(), registry.keyset.zsk.dnskey
        )

    def test_nxdomain_with_covering_nsec(self):
        registry = build_registry().registry
        qname = n("missing.com.dlv.isc.org")
        result = registry.lookup(qname, RRType.DLV, dnssec_ok=True)
        assert result.outcome is LookupOutcome.NXDOMAIN
        nsec_rrsets = [r for r in result.authority if r.rtype is RRType.NSEC]
        assert len(nsec_rrsets) == 1
        nsec = nsec_rrsets[0]
        assert name_between(qname, nsec.name, nsec.first().next_name)

    def test_empty_non_terminal_is_nodata(self):
        registry = build_registry().registry
        result = registry.lookup(n("com.dlv.isc.org"), RRType.DLV)
        assert result.outcome is LookupOutcome.NODATA

    def test_apex_dnskey(self):
        registry = build_registry().registry
        result = registry.lookup(ORIGIN, RRType.DNSKEY)
        assert result.outcome is LookupOutcome.ANSWER
        assert len(result.answer[0]) == 2

    def test_out_of_zone_rejected(self):
        registry = build_registry().registry
        with pytest.raises(ZoneError):
            registry.lookup(n("example.com"), RRType.DLV)

    def test_wrong_type_at_deposit_is_nodata(self):
        registry = build_registry().registry
        result = registry.lookup(n("alpha.com.dlv.isc.org"), RRType.A)
        assert result.outcome is LookupOutcome.NODATA


class TestEmptyRegistry:
    """ISC's phase-out mode: the zone lives on with zero deposits."""

    def test_every_query_is_nxdomain(self):
        registry = DLVRegistryServer.build(
            origin=ORIGIN, keyset=POOL.keys_for_zone(ORIGIN), deposits={}
        ).registry
        result = registry.lookup(n("any.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True)
        assert result.outcome is LookupOutcome.NXDOMAIN

    def test_single_nsec_covers_whole_zone(self):
        registry = DLVRegistryServer.build(
            origin=ORIGIN, keyset=POOL.keys_for_zone(ORIGIN), deposits={}
        ).registry
        result = registry.lookup(n("x.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True)
        nsec = next(r for r in result.authority if r.rtype is RRType.NSEC)
        assert nsec.name == ORIGIN
        assert nsec.first().next_name == ORIGIN


class TestNsec3Mode:
    def test_nxdomain_carries_nsec3_not_nsec(self):
        registry = build_registry(denial=DenialMode.NSEC3).registry
        result = registry.lookup(
            n("missing.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        types = [r.rtype for r in result.authority]
        assert RRType.NSEC3 in types
        assert RRType.NSEC not in types

    def test_positive_answers_unaffected(self):
        registry = build_registry(denial=DenialMode.NSEC3).registry
        result = registry.lookup(n("alpha.com.dlv.isc.org"), RRType.DLV)
        assert result.outcome is LookupOutcome.ANSWER


class TestHashedMode:
    def test_lookup_by_hash_label(self):
        registry = build_registry(hashed=True).registry
        qname = ORIGIN.prepend(hash_domain_label(n("alpha.com")))
        result = registry.lookup(qname, RRType.DLV)
        assert result.outcome is LookupOutcome.ANSWER

    def test_plain_name_lookup_misses(self):
        registry = build_registry(hashed=True).registry
        result = registry.lookup(n("alpha.com.dlv.isc.org"), RRType.DLV)
        assert result.outcome is LookupOutcome.NXDOMAIN


class TestServerFrontend:
    def test_wire_roundtrip_answer(self):
        server = build_registry()
        query = Message.make_query(
            1, n("alpha.com.dlv.isc.org"), RRType.DLV, dnssec_ok=True
        )
        response = server.handle(query)
        assert response.rcode is RCode.NOERROR
        assert response.answer[0].rtype is RRType.DLV

    def test_no_such_name_response(self):
        """The registry's NXDOMAIN is the paper's "No such name"."""
        server = build_registry()
        query = Message.make_query(2, n("zzz.com.dlv.isc.org"), RRType.DLV)
        response = server.handle(query)
        assert response.rcode is RCode.NXDOMAIN
        assert response.rcode.describe() == "No such name"

    def test_extra_owner_entries(self):
        extra = {n("filler.com"): make_dlv(n("filler.com"), POOL.keys_for_zone(n("filler.com")).ksk.dnskey)}
        server = DLVRegistryServer.build(
            origin=ORIGIN,
            keyset=POOL.keys_for_zone(ORIGIN),
            deposits={},
            extra_owners=extra,
        )
        assert server.registry.has_deposit(n("filler.com"))
