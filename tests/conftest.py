"""Shared test configuration.

Registers a hypothesis profile without per-example deadlines: several
property tests build whole simulated universes per example, and their
wall-clock time varies with machine load, not with input size.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
