"""Shared test configuration.

Registers a hypothesis profile without per-example deadlines: several
property tests build whole simulated universes per example, and their
wall-clock time varies with machine load, not with input size.

Also registers the ``--update-golden`` flag used by the golden-file
regression suite in ``tests/golden/``: run
``pytest tests/golden --update-golden`` to rewrite the pinned JSON
files after an intentional behaviour change, then commit the diff.
"""

import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden files in tests/golden/ from the current "
        "code instead of asserting against them",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden files rather than
    compare against them."""
    return request.config.getoption("--update-golden")
