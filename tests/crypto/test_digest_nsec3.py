"""Tests for DS/DLV digests, the hashed-DLV label, and NSEC3 hashing."""

import random

import pytest

from repro.crypto import (
    HASH_LABEL_HEX_CHARS,
    base32hex_encode,
    generate_keypair,
    hash_domain_label,
    make_dlv,
    make_ds,
    make_zone_key,
    nsec3_hash,
    nsec3_owner_label,
    verify_ds_matches,
)
from repro.dnscore import DigestType, Name, RRType


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def ksk():
    return make_zone_key(generate_keypair(random.Random(3), 256), ksk=True)


@pytest.fixture(scope="module")
def other_ksk():
    return make_zone_key(generate_keypair(random.Random(4), 256), ksk=True)


class TestDsDigest:
    def test_ds_matches_its_key(self, ksk):
        ds = make_ds(n("example.com"), ksk.dnskey)
        assert verify_ds_matches(n("example.com"), ksk.dnskey, ds)

    def test_ds_rejects_other_key(self, ksk, other_ksk):
        ds = make_ds(n("example.com"), ksk.dnskey)
        assert not verify_ds_matches(n("example.com"), other_ksk.dnskey, ds)

    def test_ds_is_owner_specific(self, ksk):
        """Two zones sharing pool key material still get distinct DS
        digests — the property that makes key pooling safe."""
        ds_a = make_ds(n("a.com"), ksk.dnskey)
        ds_b = make_ds(n("b.com"), ksk.dnskey)
        assert ds_a.digest != ds_b.digest
        assert not verify_ds_matches(n("b.com"), ksk.dnskey, ds_a)

    def test_sha1_supported(self, ksk):
        ds = make_ds(n("example.com"), ksk.dnskey, DigestType.SHA1)
        assert len(ds.digest) == 20
        assert verify_ds_matches(n("example.com"), ksk.dnskey, ds)

    def test_dlv_mirrors_ds(self, ksk):
        ds = make_ds(n("example.com"), ksk.dnskey)
        dlv = make_dlv(n("example.com"), ksk.dnskey)
        assert dlv.rtype is RRType.DLV
        assert (dlv.key_tag, dlv.digest) == (ds.key_tag, ds.digest)


class TestHashedDlvLabel:
    def test_label_is_valid_dns_label(self):
        label = hash_domain_label(n("example.com"))
        assert len(label) == HASH_LABEL_HEX_CHARS <= 63
        assert all(c in "0123456789abcdef" for c in label)

    def test_deterministic(self):
        assert hash_domain_label(n("example.com")) == hash_domain_label(
            n("EXAMPLE.com")
        )

    def test_distinct_domains_distinct_labels(self):
        assert hash_domain_label(n("a.com")) != hash_domain_label(n("b.com"))


class TestNsec3:
    def test_iterations_change_hash(self):
        name = n("example.com")
        assert nsec3_hash(name, b"salt", 0) != nsec3_hash(name, b"salt", 5)

    def test_salt_changes_hash(self):
        name = n("example.com")
        assert nsec3_hash(name, b"a", 1) != nsec3_hash(name, b"b", 1)

    def test_owner_label_fits_dns(self):
        label = nsec3_owner_label(n("example.com"), b"\xaa\xbb", 10)
        assert len(label) == 32  # SHA-1 -> 160 bits -> 32 base32 chars
        assert len(label) <= 63

    def test_base32hex_known_vector(self):
        # RFC 4648 test vector: base32hex("foobar") = "cpnmuoj1e8"
        # (lowercase, unpadded)
        assert base32hex_encode(b"foobar") == "cpnmuoj1e8"

    def test_base32hex_empty(self):
        assert base32hex_encode(b"") == ""
