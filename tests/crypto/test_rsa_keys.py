"""Tests for RSA signatures, zone keys, and the key pool."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    KeyPool,
    RSAPublicKey,
    generate_keypair,
    make_zone_key,
)
from repro.dnscore import Name


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(random.Random(99), modulus_bits=512)


@pytest.fixture(scope="module")
def other_keypair():
    return generate_keypair(random.Random(100), modulus_bits=512)


class TestRsa:
    def test_sign_verify(self, keypair):
        data = b"the quick brown fox"
        signature = keypair.sign(data)
        assert keypair.public_key.verify(data, signature)

    def test_tampered_data_fails(self, keypair):
        signature = keypair.sign(b"original")
        assert not keypair.public_key.verify(b"tampered", signature)

    def test_wrong_key_fails(self, keypair, other_keypair):
        signature = keypair.sign(b"data")
        assert not other_keypair.public_key.verify(b"data", signature)

    def test_tampered_signature_fails(self, keypair):
        signature = bytearray(keypair.sign(b"data"))
        signature[0] ^= 0xFF
        assert not keypair.public_key.verify(b"data", bytes(signature))

    def test_oversized_signature_rejected(self, keypair):
        modulus_bytes = (keypair.modulus.bit_length() + 7) // 8
        huge = (keypair.modulus + 1).to_bytes(modulus_bytes + 1, "big")
        assert not keypair.public_key.verify(b"data", huge)

    def test_public_key_byte_roundtrip(self, keypair):
        public = keypair.public_key
        assert RSAPublicKey.from_bytes(public.to_bytes()) == public

    def test_deterministic_generation(self):
        a = generate_keypair(random.Random(5), 256)
        b = generate_keypair(random.Random(5), 256)
        assert a == b

    def test_modulus_has_requested_size(self, keypair):
        assert keypair.modulus.bit_length() == 512

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=0, max_size=200))
    def test_verify_property(self, data):
        keypair = generate_keypair(random.Random(1), 256)
        assert keypair.public_key.verify(data, keypair.sign(data))


class TestZoneKeys:
    def test_ksk_zsk_flags(self, keypair):
        assert make_zone_key(keypair, ksk=True).dnskey.flags == 257
        assert make_zone_key(keypair, ksk=False).dnskey.flags == 256

    def test_key_tag_matches_dnskey(self, keypair):
        zone_key = make_zone_key(keypair, ksk=True)
        assert zone_key.key_tag == zone_key.dnskey.key_tag()


class TestKeyPool:
    def test_same_origin_same_keys(self):
        pool = KeyPool(seed=1, pool_size=8, modulus_bits=256)
        first = pool.keys_for_zone(Name.from_text("example.com"))
        second = pool.keys_for_zone(Name.from_text("example.com"))
        assert first is second

    def test_stable_across_pool_instances(self):
        origin = Name.from_text("example.com")
        a = KeyPool(seed=1, pool_size=8, modulus_bits=256).keys_for_zone(origin)
        b = KeyPool(seed=1, pool_size=8, modulus_bits=256).keys_for_zone(origin)
        assert a.ksk.dnskey == b.ksk.dnskey

    def test_ksk_and_zsk_differ(self):
        pool = KeyPool(seed=1, pool_size=8, modulus_bits=256)
        keyset = pool.keys_for_zone(Name.from_text("example.com"))
        assert keyset.ksk.dnskey != keyset.zsk.dnskey

    def test_rejects_odd_pool(self):
        with pytest.raises(ValueError):
            KeyPool(pool_size=5)

    def test_fresh_keyset_differs_from_pool(self):
        pool = KeyPool(seed=1, pool_size=8, modulus_bits=256)
        origin = Name.from_text("example.com")
        pooled = pool.keys_for_zone(origin)
        fresh = pool.fresh_keyset()
        assert fresh.ksk.dnskey != pooled.ksk.dnskey

    def test_bounded_memory_over_many_origins(self):
        pool = KeyPool(seed=1, pool_size=8, modulus_bits=256)
        for index in range(100):
            pool.keys_for_zone(Name.from_text(f"domain{index}.com"))
        assert len(pool._keysets) <= 4
