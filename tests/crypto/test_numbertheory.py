"""Tests for the number-theory primitives."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import generate_prime, is_probable_prime, modinv


KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 104729, 2**61 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 9, 561, 1105, 6601, 8911, 2**61 - 2]
# 561, 1105, 6601, 8911 are Carmichael numbers — Fermat liars.


@pytest.mark.parametrize("value", KNOWN_PRIMES)
def test_known_primes(value):
    assert is_probable_prime(value)


@pytest.mark.parametrize("value", KNOWN_COMPOSITES)
def test_known_composites_including_carmichael(value):
    assert not is_probable_prime(value)


def test_generate_prime_size_and_primality():
    rng = random.Random(1)
    for bits in (16, 64, 128):
        prime = generate_prime(bits, rng)
        assert prime.bit_length() == bits
        assert is_probable_prime(prime)


def test_generate_prime_deterministic_under_seed():
    assert generate_prime(64, random.Random(7)) == generate_prime(64, random.Random(7))


def test_generate_prime_rejects_tiny():
    with pytest.raises(ValueError):
        generate_prime(2, random.Random(0))


class TestModinv:
    def test_basic(self):
        assert modinv(3, 11) == 4

    def test_non_invertible_raises(self):
        with pytest.raises(ValueError):
            modinv(6, 9)

    @given(st.integers(2, 10**6))
    @settings(max_examples=100)
    def test_inverse_property(self, modulus):
        value = 65537
        if modulus % 65537 == 0:
            return
        # gcd must be 1 for an inverse to exist.
        import math

        if math.gcd(value, modulus) != 1:
            return
        inverse = modinv(value, modulus)
        assert (value * inverse) % modulus == 1
        assert 0 <= inverse < modulus
