"""Tests for the secured-45 set and the DITL trace generator."""

import numpy as np
import pytest

from repro.workloads import (
    DitlParams,
    FULL_TRACE_MINUTES,
    FULL_TRACE_TOTAL_QUERIES,
    ISLAND_COUNT,
    RATE_MAX_QPM,
    RATE_MIN_QPM,
    SECURED_DOMAIN_COUNT,
    evaluate_txt_overhead,
    generate_trace,
    island_names,
    secured_domains,
)


class TestSecuredSet:
    def test_counts(self):
        specs = secured_domains()
        assert len(specs) == SECURED_DOMAIN_COUNT == 45
        islands = [s for s in specs if s.is_island_of_security()]
        assert len(islands) == ISLAND_COUNT == 5

    def test_all_signed(self):
        assert all(spec.signed for spec in secured_domains())

    def test_islands_deposited_by_default(self):
        specs = secured_domains()
        for spec in specs:
            if spec.is_island_of_security():
                assert spec.dlv_deposited
            else:
                assert not spec.dlv_deposited

    def test_islands_can_be_undeposited(self):
        specs = secured_domains(dlv_deposited_islands=False)
        assert not any(spec.dlv_deposited for spec in specs)

    def test_island_names_helper(self):
        names = island_names()
        assert len(names) == 5
        assert all("island-" in name.to_text() for name in names)

    def test_names_unique(self):
        names = [spec.name for spec in secured_domains()]
        assert len(set(names)) == len(names)


class TestDitlTrace:
    def test_full_scale_envelope(self):
        trace = generate_trace(DitlParams(scale=1.0))
        rescaled = trace.per_minute
        assert len(rescaled) == FULL_TRACE_MINUTES
        assert rescaled.min() >= RATE_MIN_QPM
        assert rescaled.max() <= RATE_MAX_QPM

    def test_total_near_published(self):
        trace = generate_trace(DitlParams(scale=1.0))
        assert abs(trace.total_queries - FULL_TRACE_TOTAL_QUERIES) < 0.05 * FULL_TRACE_TOTAL_QUERIES

    def test_scaled_trace_rescales_back(self):
        trace = generate_trace(DitlParams(scale=0.01))
        rescaled_total = trace.total_queries * trace.rescale_factor()
        assert abs(rescaled_total - FULL_TRACE_TOTAL_QUERIES) < 0.10 * FULL_TRACE_TOTAL_QUERIES

    def test_deterministic(self):
        a = generate_trace(DitlParams(seed=1, scale=0.01))
        b = generate_trace(DitlParams(seed=1, scale=0.01))
        assert np.array_equal(a.per_minute, b.per_minute)

    def test_cumulative_monotone(self):
        trace = generate_trace(DitlParams(scale=0.01))
        cumulative = trace.cumulative()
        assert np.all(np.diff(cumulative) > 0)


class TestDitlOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        params = DitlParams(scale=0.005)
        return evaluate_txt_overhead(generate_trace(params), params)

    def test_overhead_grows_monotonically(self, result):
        assert np.all(np.diff(result.cumulative_overhead_bytes) >= 0)

    def test_overhead_is_fraction_of_baseline(self, result):
        assert 0 < result.total_overhead_bytes < result.total_baseline_bytes

    def test_cache_bounds_fetches(self, result):
        """TXT fetches per minute cannot exceed query volume."""
        assert np.all(
            result.txt_fetches_per_minute <= result.trace.per_minute
        )

    def test_rescaled_overhead_order_of_magnitude(self):
        """The paper reports ~1.2 GB over the full trace; the model
        should land within a factor of ~2."""
        params = DitlParams(scale=0.02)
        result = evaluate_txt_overhead(generate_trace(params), params)
        rescaled_gb = result.rescaled_total_overhead_bytes() / 1e9
        assert 0.5 <= rescaled_gb <= 2.5
