"""Tests for the synthetic Alexa-like workload generator."""

from collections import Counter

import pytest

from repro.dnscore import Name
from repro.workloads import AlexaWorkload, WorkloadParams


@pytest.fixture(scope="module")
def workload():
    return AlexaWorkload(2000, WorkloadParams(seed=7))


class TestGeneration:
    def test_exact_count(self, workload):
        assert len(workload) == 2000

    def test_names_unique(self, workload):
        names = workload.names()
        assert len(set(names)) == len(names)

    def test_all_slds(self, workload):
        for spec in workload:
            assert spec.name.label_count == 2

    def test_deterministic_under_seed(self):
        a = AlexaWorkload(50, WorkloadParams(seed=3)).names()
        b = AlexaWorkload(50, WorkloadParams(seed=3)).names()
        assert a == b

    def test_different_seeds_differ(self):
        a = AlexaWorkload(50, WorkloadParams(seed=3)).names()
        b = AlexaWorkload(50, WorkloadParams(seed=4)).names()
        assert a != b

    def test_prefix_stability(self):
        """Top-N of a bigger workload equals the N-sized workload —
        required for incremental sweeps."""
        small = AlexaWorkload(100, WorkloadParams(seed=5)).names()
        large = AlexaWorkload(400, WorkloadParams(seed=5)).names(100)
        assert small == large

    def test_ranks_sequential(self, workload):
        ranks = [spec.rank for spec in workload]
        assert ranks == list(range(1, len(workload) + 1))

    def test_get_by_name(self, workload):
        spec = workload.domains[17]
        assert workload.get(spec.name) is spec
        assert workload.get(Name.from_text("definitely-not-there.com")) is None


class TestDeploymentRates:
    def test_signed_fraction_near_target(self, workload):
        signed = sum(1 for s in workload if s.signed)
        assert 0.01 <= signed / len(workload) <= 0.06

    def test_islands_are_signed_without_ds(self, workload):
        for spec in workload:
            if spec.is_island_of_security():
                assert spec.signed and not spec.ds_in_parent

    def test_ds_implies_signed(self, workload):
        for spec in workload:
            if spec.ds_in_parent:
                assert spec.signed

    def test_dlv_implies_signed(self, workload):
        for spec in workload:
            if spec.dlv_deposited:
                assert spec.signed

    def test_tld_mix_dominated_by_com(self, workload):
        tlds = Counter(spec.name.labels[-1] for spec in workload)
        assert tlds["com"] > tlds["net"] > 0

    def test_out_of_bailiwick_fraction(self, workload):
        oob = sum(1 for s in workload if s.out_of_bailiwick_ns)
        assert 0.05 <= oob / len(workload) <= 0.3


class TestShuffles:
    def test_shuffle_same_population(self, workload):
        shuffled = workload.shuffled_names(100, trial_seed=1)
        assert sorted(shuffled, key=str) == sorted(workload.names(100), key=str)

    def test_shuffle_trials_differ(self, workload):
        assert workload.shuffled_names(100, 1) != workload.shuffled_names(100, 2)

    def test_shuffle_deterministic(self, workload):
        assert workload.shuffled_names(100, 1) == workload.shuffled_names(100, 1)


class TestRegistryFiller:
    def test_count_and_uniqueness(self, workload):
        filler = workload.registry_filler(500)
        assert len(filler) == 500
        assert len(set(filler)) == 500

    def test_disjoint_from_workload(self, workload):
        filler = set(workload.registry_filler(500))
        assert filler.isdisjoint(set(workload.names()))

    def test_independent_of_workload_size(self):
        a = AlexaWorkload(100, WorkloadParams(seed=5)).registry_filler(200)
        b = AlexaWorkload(1000, WorkloadParams(seed=5)).registry_filler(200)
        assert a == b

    def test_calibrated_weights_skip_tail_tlds(self, workload):
        weights = workload.calibrated_filler_weights()
        for uncovered in ("ru", "cn", "io", "xyz", "uk"):
            assert uncovered not in weights
        assert weights["com"] > weights["net"]

    def test_filler_respects_custom_weights(self, workload):
        filler = workload.registry_filler(300, tld_weights={"de": 1.0})
        assert all(name.labels[-1] == "de" for name in filler)
