"""Tests for the Universe builder."""

import pytest

from repro.dnscore import Name, RRType
from repro.resolver import correct_bind_config
from repro.workloads import (
    AlexaWorkload,
    ReverseZone,
    Universe,
    UniverseParams,
    WorkloadParams,
)
from repro.zones.zone import LookupOutcome, ZoneError


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def world():
    workload = AlexaWorkload(40, WorkloadParams(seed=13))
    universe = Universe(
        workload.domains,
        UniverseParams(modulus_bits=256, registry_filler=tuple(workload.registry_filler(100))),
    )
    return workload, universe


class TestTopology:
    def test_root_zone_signed_and_delegating(self, world):
        _, universe = world
        assert universe.root_zone.signed
        assert n("com") in universe.root_zone.delegations()
        assert n("in-addr.arpa") in universe.root_zone.delegations()

    def test_unsigned_tlds_have_no_ds_in_root(self, world):
        _, universe = world
        assert universe.root_zone.get(n("ru"), RRType.DS) is None
        assert universe.root_zone.get(n("com"), RRType.DS) is not None

    def test_registry_chain_delegated(self, world):
        _, universe = world
        org = universe._tld_zones["org"]
        assert n("isc.org") in org.delegations()
        assert universe.isc_zone.get(n("dlv.isc.org"), RRType.DS) is not None

    def test_registry_deposits_match_specs(self, world):
        workload, universe = world
        for spec in workload:
            assert universe.has_dlv_deposit(spec.name) == spec.dlv_deposited

    def test_registry_filler_counted(self, world):
        workload, universe = world
        own = sum(1 for s in workload if s.dlv_deposited)
        assert universe.registry_zone.deposit_count() == own + 100

    def test_apex_addresses_unique(self, world):
        workload, universe = world
        addresses = [universe.apex_address(s.name) for s in workload]
        assert all(addresses)
        assert len(set(addresses)) == len(addresses)

    def test_spec_lookup(self, world):
        workload, universe = world
        spec = workload.domains[0]
        assert universe.spec_for(spec.name) is spec

    def test_empty_registry_mode(self):
        workload = AlexaWorkload(10, WorkloadParams(seed=13))
        universe = Universe(
            workload.domains,
            UniverseParams(modulus_bits=256, registry_empty=True),
        )
        assert universe.registry_zone.deposit_count() == 0


class TestAnchors:
    def test_root_anchor_validates_root_ksk(self, world):
        _, universe = world
        anchor = universe.root_trust_anchor()
        assert anchor.matches_key(universe.root_keys.ksk.dnskey)

    def test_anchors_for_correct_config(self, world):
        _, universe = world
        store = universe.anchors_for(correct_bind_config())
        assert store.anchor_for_zone(Name(())) is not None
        assert store.anchor_for_zone(universe.registry_origin) is not None

    def test_anchors_for_broken_config(self, world):
        from repro.resolver import broken_anchor_bind_config

        _, universe = world
        store = universe.anchors_for(broken_anchor_bind_config())
        assert store.anchor_for_zone(Name(())) is None
        assert store.anchor_for_zone(universe.registry_origin) is not None


class TestFactories:
    def test_resolvers_get_distinct_addresses(self, world):
        _, universe = world
        a = universe.make_resolver(correct_bind_config())
        b = universe.make_resolver(correct_bind_config())
        assert a.address != b.address

    def test_stub_points_at_resolver(self, world):
        _, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        stub = universe.make_stub(resolver)
        assert stub.resolver_address == resolver.address

    def test_resolver_latency_pinned_low(self, world):
        _, universe = world
        resolver = universe.make_resolver(correct_bind_config())
        assert universe.network.latency.base_rtt(resolver.address) < 0.005


class TestReverseZone:
    def test_ptr_answer(self):
        zone = ReverseZone()
        result = zone.lookup(n("4.3.2.1.in-addr.arpa"), RRType.PTR)
        assert result.outcome is LookupOutcome.ANSWER
        assert result.answer[0].rtype is RRType.PTR

    def test_non_ptr_is_nodata(self):
        zone = ReverseZone()
        result = zone.lookup(n("4.3.2.1.in-addr.arpa"), RRType.A)
        assert result.outcome is LookupOutcome.NODATA

    def test_out_of_zone_rejected(self):
        zone = ReverseZone()
        with pytest.raises(ZoneError):
            zone.lookup(n("example.com"), RRType.PTR)
