"""Tests for packet loss, timeouts, and retry behaviour."""

import pytest

from repro.dnscore import Message, Name, RCode, RRType
from repro.netsim import Network, QueryTimeout, ZeroLatency


def n(text):
    return Name.from_text(text)


class EchoServer:
    def __init__(self):
        self.handled = 0

    def handle(self, query):
        self.handled += 1
        return query.make_response(rcode=RCode.NOERROR)


def make_network(loss_rate, seed=1):
    network = Network(latency=ZeroLatency(), loss_rate=loss_rate, loss_seed=seed)
    server = EchoServer()
    network.register("srv", server)
    return network, server


class TestLossModel:
    def test_zero_loss_never_times_out(self):
        network, _ = make_network(0.0)
        for i in range(200):
            network.query("c", "srv", Message.make_query(i, n("x.com"), RRType.A))

    def test_full_range_validation(self):
        with pytest.raises(ValueError):
            Network(loss_rate=1.0)
        with pytest.raises(ValueError):
            Network(loss_rate=-0.1)

    def test_loss_raises_query_timeout(self):
        network, _ = make_network(0.9, seed=3)
        with pytest.raises(QueryTimeout):
            for i in range(50):
                network.query(
                    "c", "srv", Message.make_query(i, n("x.com"), RRType.A)
                )

    def test_timeout_advances_clock(self):
        network, _ = make_network(0.999, seed=4)
        before = network.clock.now
        with pytest.raises(QueryTimeout):
            network.query("c", "srv", Message.make_query(1, n("x.com"), RRType.A))
        assert network.clock.now >= before + network.loss_timeout

    def test_lost_query_never_reaches_server(self):
        network, server = make_network(0.999, seed=5)
        # Find a query-lost event (direction is a coin flip).
        for i in range(50):
            try:
                network.query(
                    "c", "srv", Message.make_query(i, n("x.com"), RRType.A)
                )
            except QueryTimeout as exc:
                if "query to" in str(exc):
                    break
        dropped_queries = [
            r for r in network.capture if r.is_query and r.dropped
        ]
        assert dropped_queries

    def test_lost_response_was_handled_by_server(self):
        network, server = make_network(0.999, seed=6)
        for i in range(50):
            try:
                network.query(
                    "c", "srv", Message.make_query(i, n("x.com"), RRType.A)
                )
            except QueryTimeout as exc:
                if "response from" in str(exc):
                    break
        dropped_responses = [
            r for r in network.capture if not r.is_query and r.dropped
        ]
        assert dropped_responses
        assert server.handled > 0

    def test_loss_rate_statistics(self):
        network, _ = make_network(0.3, seed=7)
        losses = 0
        for i in range(500):
            try:
                network.query(
                    "c", "srv", Message.make_query(i, n("x.com"), RRType.A)
                )
            except QueryTimeout:
                losses += 1
        assert 0.2 <= losses / 500 <= 0.4

    def test_deterministic_under_seed(self):
        outcomes = []
        for _ in range(2):
            network, _ = make_network(0.5, seed=11)
            run = []
            for i in range(30):
                try:
                    network.query(
                        "c", "srv", Message.make_query(i, n("x.com"), RRType.A)
                    )
                    run.append("ok")
                except QueryTimeout:
                    run.append("lost")
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]


class TestResolverUnderLoss:
    def test_experiment_survives_loss(self):
        from repro.core import LeakageExperiment
        from repro.resolver import correct_bind_config
        from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams

        workload = AlexaWorkload(25, WorkloadParams(seed=77))
        universe = Universe(
            workload.domains,
            UniverseParams(
                modulus_bits=256,
                loss_rate=0.05,
                registry_filler=tuple(workload.registry_filler(300)),
            ),
        )
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        result = experiment.run(workload.names(25))
        assert result.rcode_counts.get("NOERROR", 0) >= 23
        assert experiment.resolver.engine.timeouts > 0

    def test_leaked_count_robust_to_recoverable_loss(self):
        """With retries, the leaked-domain count stays the structural
        invariant it is in the lossless run — loss perturbs timing and
        duplicate queries, not which ranges get touched."""
        from repro.core import LeakageExperiment
        from repro.resolver import correct_bind_config
        from repro.workloads import AlexaWorkload, Universe, UniverseParams, WorkloadParams

        workload = AlexaWorkload(30, WorkloadParams(seed=78))
        counts = set()
        for loss in (0.0, 0.03):
            universe = Universe(
                workload.domains,
                UniverseParams(
                    modulus_bits=256,
                    loss_rate=loss,
                    registry_filler=tuple(workload.registry_filler(300)),
                ),
            )
            experiment = LeakageExperiment(
                universe, correct_bind_config(), ptr_fraction=0.0
            )
            counts.add(experiment.run(workload.names(30)).leakage.leaked_count)
        assert len(counts) == 1
