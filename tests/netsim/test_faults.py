"""Fault-plan tests: outage windows, per-address loss, brownouts,
tamper hooks, and capture determinism."""

import dataclasses

import pytest

from repro.dnscore import Message, Name, RCode, RRType
from repro.netsim import (
    Brownout,
    FaultPlan,
    LatencyModel,
    Network,
    OutageWindow,
    QueryTimeout,
    ZeroLatency,
)


def n(text):
    return Name.from_text(text)


class EchoServer:
    def __init__(self):
        self.handled = 0

    def handle(self, query):
        self.handled += 1
        return query.make_response(rcode=RCode.NOERROR)


def make_network(**kwargs):
    network = Network(latency=ZeroLatency(), **kwargs)
    server = EchoServer()
    network.register("srv", server)
    return network, server


def ask(network, i=1, dst="srv"):
    return network.query("c", dst, Message.make_query(i, n("x.com"), RRType.A))


class TestOutageWindows:
    def test_black_hole_before_during_after(self):
        network, server = make_network()
        network.faults.add_outage("srv", start=10.0, end=20.0)
        ask(network)  # before the window: delivered
        assert server.handled == 1
        network.clock.advance(10.0 - network.clock.now)
        with pytest.raises(QueryTimeout):
            ask(network, i=2)
        assert server.handled == 1  # black-holed, never arrived
        network.clock.advance(20.0 - network.clock.now)
        ask(network, i=3)  # window over
        assert server.handled == 2

    def test_black_hole_costs_exactly_one_timeout(self):
        network, _ = make_network()
        network.faults.add_outage("srv")
        before = network.clock.now
        with pytest.raises(QueryTimeout):
            ask(network)
        assert network.clock.now == pytest.approx(
            before + network.loss_timeout
        )

    def test_rcode_outage_never_touches_server(self):
        network, server = make_network()
        network.faults.add_outage("srv", rcode=RCode.REFUSED)
        response = ask(network)
        assert response.rcode is RCode.REFUSED
        assert server.handled == 0

    def test_dropped_outage_queries_marked_in_capture(self):
        network, _ = make_network()
        network.faults.add_outage("srv")
        with pytest.raises(QueryTimeout):
            ask(network)
        records = list(network.capture)
        assert len(records) == 1
        assert records[0].is_query and records[0].dropped

    def test_clear_lifts_the_outage(self):
        network, server = make_network()
        network.faults.add_outage("srv")
        network.faults.clear("srv")
        ask(network)
        assert server.handled == 1


class TestLossAccounting:
    def test_every_drop_costs_exactly_one_timeout(self):
        """Regression for the historical double penalty: a lost
        *response* used to cost rtt + loss_timeout; now every drop costs
        exactly loss_timeout measured from send time."""
        latency = LatencyModel(seed=1)
        latency.pin("srv", 0.2)
        network = Network(latency=latency, loss_rate=0.999, loss_seed=6)
        network.register("srv", EchoServer())
        for i in range(20):
            before = network.clock.now
            try:
                ask(network, i=i)
            except QueryTimeout:
                assert network.clock.now == pytest.approx(
                    before + network.loss_timeout
                )

    def test_per_address_loss_overrides_default(self):
        network, _ = make_network()
        network.register("lossy", EchoServer())
        network.faults.set_loss("lossy", 0.95)
        for i in range(100):  # default 0 loss: never times out
            ask(network, i=i)
        losses = 0
        for i in range(100):
            try:
                ask(network, i=i, dst="lossy")
            except QueryTimeout:
                losses += 1
        assert losses >= 80


class TestBrownouts:
    def test_brownout_adds_latency_inside_window_only(self):
        network, _ = make_network()
        network.faults.add_brownout("srv", 0.0, 10.0, 0.5)
        before = network.clock.now
        ask(network)
        assert network.clock.now == pytest.approx(before + 0.5)
        network.clock.advance(10.0 - network.clock.now)
        before = network.clock.now
        ask(network, i=2)
        assert network.clock.now == pytest.approx(before)


class TestTamperHooks:
    def test_tamper_rewrites_response(self):
        network, server = make_network()
        hits = []

        def strip_answer(response):
            hits.append(response)
            return dataclasses.replace(response, answer=())

        network.faults.set_tamper("srv", strip_answer)
        response = ask(network)
        assert response.answer == ()
        assert len(hits) == 1
        assert server.handled == 1  # the server answered; the wire lied
        network.faults.set_tamper("srv", None)
        ask(network, i=2)
        assert len(hits) == 1


class TestValidation:
    def test_window_bounds(self):
        with pytest.raises(ValueError):
            OutageWindow(5.0, 5.0)
        with pytest.raises(ValueError):
            Brownout(0.0, 5.0, -0.1)

    def test_loss_rates(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.set_loss("srv", 1.0)
        with pytest.raises(ValueError):
            FaultPlan(default_loss_rate=-0.1)

    def test_describe_mentions_faults(self):
        plan = (
            FaultPlan()
            .add_outage("a", start=1.0, end=2.0)
            .add_outage("b", rcode=RCode.SERVFAIL)
            .set_loss("c", 0.25)
        )
        text = plan.describe()
        assert "timeout" in text and "SERVFAIL" in text and "0.250" in text
        assert FaultPlan().describe() == "no faults"


class TestDeterminism:
    @staticmethod
    def _run_once():
        plan = (
            FaultPlan(seed=42, default_loss_rate=0.3)
            .add_outage("srv", start=5.0, end=8.0)
            .set_loss("srv", 0.4)
        )
        network = Network(latency=ZeroLatency(), faults=plan)
        network.register("srv", EchoServer())
        outcomes = []
        for i in range(60):
            try:
                ask(network, i=i)
                outcomes.append("ok")
            except QueryTimeout:
                outcomes.append("lost")
        return outcomes, network.capture.export_rows()

    def test_same_seed_same_plan_identical_capture(self):
        first_outcomes, first_rows = self._run_once()
        second_outcomes, second_rows = self._run_once()
        assert first_outcomes == second_outcomes
        assert first_rows == second_rows
