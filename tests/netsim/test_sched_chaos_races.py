"""Race and load-shedding regressions for chaos-under-load replays.

Two families, both pinned because the chaos replay driver depends on
them:

* **Delivery-beats-timeout inside an outage window** — when a scripted
  :class:`FaultPlan` outage is active and many sessions are in flight,
  a response delivered at exactly a timeout's instant must still win,
  on both the ``call_at`` (plain callback) and in-session
  (``clock.advance`` resumption) paths.  Seeded across three seeds so
  the surrounding concurrent noise cannot mask an ordering regression.
* **Bounded admission** — ``max_queue`` sheds arrivals beyond the FIFO
  bound deterministically: the shed session never runs, the journal
  records it, ``stats.rejected`` counts it, and the ``on_reject``
  callback fires (the hook the replay driver uses to keep its
  dispatch ledger consistent).
"""

import random

import pytest

from repro.dnscore import RCode
from repro.netsim import EventScheduler, Priority, SimClock
from repro.netsim.faults import FaultPlan

SEEDS = (11, 23, 47)

OUTAGE_START = 10.0
OUTAGE_END = 50.0
RACE_INSTANT = 25.0  # inside [OUTAGE_START, OUTAGE_END)


def make_outage_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed).add_outage(
        "198.51.100.1", start=OUTAGE_START, end=OUTAGE_END, rcode=None
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_call_at_delivery_beats_timeout_inside_outage_window(seed):
    """The registry black-hole makes timeouts *common* at the race
    instant; a delivery landing on the same float must still dispatch
    first, whatever order the events were inserted in and however many
    concurrent sessions surround them."""
    plan = make_outage_plan(seed)
    window = plan.active_outage("198.51.100.1", RACE_INSTANT)
    assert window is not None and window.rcode is None

    rng = random.Random(seed)
    scheduler = EventScheduler(SimClock(), max_concurrent=64)
    clock = scheduler.clock
    order = []

    def noise_session(idx, offset):
        def run():
            clock.advance(offset)
            order.append(("noise", idx))
        return run

    events = [
        ("timeout", Priority.TIMEOUT),
        ("delivery", Priority.DELIVERY),
        ("timer", Priority.TIMER),
        ("dispatch", Priority.DISPATCH),
    ]
    rng.shuffle(events)
    with scheduler:
        for idx in range(8):
            # Concurrent sessions suspended across the race instant.
            scheduler.spawn(
                noise_session(idx, OUTAGE_START + rng.random() * 30.0),
                at=rng.random() * 5.0,
                tiebreak=(idx,),
            )
        for kind, priority in events:
            scheduler.call_at(
                RACE_INSTANT,
                lambda k=kind: order.append(("race", k)),
                priority=priority,
            )
        scheduler.run()

    race = [kind for tag, kind in order if tag == "race"]
    assert race == ["delivery", "timeout", "dispatch", "timer"], f"seed={seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_in_session_delivery_beats_timeout_inside_outage_window(seed):
    """The same race through session resumptions: one session resumes
    as a delivery and another as a timeout at the same in-window float;
    the delivery resumes first regardless of spawn order."""
    plan = make_outage_plan(seed)
    assert plan.active_outage("198.51.100.1", RACE_INSTANT) is not None

    rng = random.Random(seed)
    scheduler = EventScheduler(SimClock(), max_concurrent=64)
    clock = scheduler.clock
    order = []

    def racer(kind, priority):
        def run():
            clock.advance(RACE_INSTANT, priority=priority)
            order.append(("race", kind))
        return run

    def noise(idx):
        offset = rng.random() * 20.0

        def run():
            clock.advance(offset)
            order.append(("noise", idx))
        return run

    sessions = [
        ("t", racer("timeout", Priority.TIMEOUT)),
        ("d", racer("delivery", Priority.DELIVERY)),
    ]
    rng.shuffle(sessions)
    with scheduler:
        for idx in range(6):
            scheduler.spawn(noise(idx), tiebreak=(100 + idx,))
        for label, fn in sessions:
            scheduler.spawn(fn, label=label)
        scheduler.run()

    race = [kind for tag, kind in order if tag == "race"]
    assert race == ["delivery", "timeout"], f"seed={seed}"


@pytest.mark.parametrize("seed", SEEDS)
def test_race_journal_is_seed_deterministic(seed):
    """Running the identical seeded setup twice produces the identical
    journal — the property the chaos golden files lean on."""

    def run_once():
        journal = []
        rng = random.Random(seed)
        scheduler = EventScheduler(
            SimClock(), max_concurrent=8, journal=journal
        )
        clock = scheduler.clock
        with scheduler:
            for idx in range(10):
                offset = rng.random() * 40.0
                scheduler.spawn(
                    (lambda off: lambda: clock.advance(off))(offset),
                    at=rng.random() * 10.0,
                    label=f"s{idx}",
                    tiebreak=(idx,),
                )
            scheduler.call_at(
                RACE_INSTANT, lambda: None, priority=Priority.DELIVERY,
                label="delivery",
            )
            scheduler.call_at(
                RACE_INSTANT, lambda: None, priority=Priority.TIMEOUT,
                label="timeout",
            )
            scheduler.run()
        return journal

    assert run_once() == run_once()


# ----------------------------------------------------------------------
# Bounded admission (max_queue) — the load-shedding contract
# ----------------------------------------------------------------------


def long_session(clock, log, name):
    def run():
        log.append(f"start:{name}")
        clock.advance(10.0)
        log.append(f"end:{name}")
    return run


def test_max_queue_sheds_excess_arrivals():
    journal = []
    log = []
    rejected = []
    with EventScheduler(
        SimClock(), max_concurrent=1, max_queue=1, journal=journal,
        on_reject=rejected.append,
    ) as scheduler:
        clock = scheduler.clock
        for idx in range(4):
            scheduler.spawn(
                long_session(clock, log, f"s{idx}"), label=f"s{idx}",
                tiebreak=(idx,),
            )
        stats = scheduler.run()

    # One ran immediately, one queued, two were shed.
    assert stats.rejected == 2
    assert stats.queued == 1
    assert stats.completed == 2
    assert [r.label for r in rejected] == ["s2", "s3"]
    assert log == ["start:s0", "end:s0", "start:s1", "end:s1"]
    assert [entry for entry in journal if entry[1] == "rejected"] == [
        (0.0, "rejected", "s2"),
        (0.0, "rejected", "s3"),
    ]


def test_rejected_sessions_are_marked_done():
    rejected = []
    with EventScheduler(
        SimClock(), max_concurrent=1, max_queue=0, on_reject=rejected.append
    ) as scheduler:
        clock = scheduler.clock
        log = []
        for idx in range(3):
            scheduler.spawn(
                long_session(clock, log, f"s{idx}"), tiebreak=(idx,)
            )
        stats = scheduler.run()
    assert stats.rejected == 2
    assert all(session.done for session in rejected)


def test_unbounded_queue_never_rejects():
    with EventScheduler(SimClock(), max_concurrent=1) as scheduler:
        clock = scheduler.clock
        log = []
        for idx in range(6):
            scheduler.spawn(
                long_session(clock, log, f"s{idx}"), tiebreak=(idx,)
            )
        stats = scheduler.run()
    assert stats.rejected == 0
    assert stats.completed == 6


def test_negative_max_queue_is_rejected():
    with pytest.raises(ValueError):
        EventScheduler(SimClock(), max_queue=-1)


def test_stats_describe_includes_rejections():
    with EventScheduler(
        SimClock(), max_concurrent=1, max_queue=0
    ) as scheduler:
        clock = scheduler.clock
        log = []
        for idx in range(2):
            scheduler.spawn(
                long_session(clock, log, f"s{idx}"), tiebreak=(idx,)
            )
        stats = scheduler.run()
    assert "rejected=1" in stats.describe()


def test_outage_window_rcode_variants_still_validate():
    """The plan accessor the replay's fault-bounds derivation uses."""
    plan = (
        FaultPlan(seed=3)
        .add_outage("a", start=5.0, end=10.0, rcode=RCode.SERVFAIL)
        .add_outage("b", start=2.0, end=20.0)
    )
    windows = plan.outage_windows()
    assert {(address, w.start, w.end) for address, w in windows} == {
        ("a", 5.0, 10.0),
        ("b", 2.0, 20.0),
    }
