"""Adversary personas: unit behaviour and end-to-end acceptance.

The unit half exercises each persona's tampering in isolation; the
end-to-end half runs the full adversary matrix (personas × hardening
policies) over a standard universe and asserts the PR's acceptance
criteria:

* hardened resolver: **zero** attacker-recognised cache entries under
  the Spoofer and Poisoner, amplification and crypto work inside the
  configured budgets under the bombers;
* unhardened control: demonstrably poisoned and amplified;
* no-adversary control: hardening changes nothing for honest traffic —
  same availability, same upstream sends, same Case-2 leakage.
"""

import dataclasses

import pytest

from repro.core import (
    deploy_poisoner,
    deploy_referral_bomber,
    deploy_sig_bomber,
    deploy_spoofer,
    run_adversary_matrix,
    standard_universe,
    standard_workload,
)
from repro.crypto import RSAPublicKey
from repro.dnscore import (
    A,
    Algorithm,
    DNSKEY,
    HeaderFlags,
    Message,
    NS,
    Name,
    Question,
    RRSIG,
    RRType,
    RRset,
)
from repro.netsim import (
    Poisoner,
    ReferralBomber,
    SigBomber,
    Spoofer,
)
from repro.netsim.adversary import all_personas
from repro.resolver import ResolverConfig


def n(text):
    return Name.from_text(text)


def a_response(qname="www.example.com", address="10.0.0.80"):
    query = Message.make_query(1234, n(qname), RRType.A)
    answer = RRset(n(qname), RRType.A, 300, (A(address),))
    return query.make_response(answer=(answer,), authoritative=True)


def referral_response(qname="www.example.com"):
    query = Message.make_query(55, n(qname), RRType.A)
    ns = RRset(n("example.com"), RRType.NS, 86400, (NS(n("ns1.example.com")),))
    glue = RRset(n("ns1.example.com"), RRType.A, 86400, (A("10.0.0.11"),))
    return dataclasses.replace(
        query.make_response(authority=(ns,), additional=(glue,)),
        flags=HeaderFlags(qr=True, aa=False),
    )


class TestPersonaBasics:
    def test_all_personas_enumerates_the_four_kinds(self):
        assert set(all_personas()) == {
            "spoofer",
            "poisoner",
            "referral-bomber",
            "sig-bomber",
        }

    def test_counters_track_seen_and_forged(self):
        spoofer = Spoofer(seed=1)
        spoofer(a_response())
        assert spoofer.responses_seen == 1
        assert spoofer.responses_forged == 1


class TestSpoofer:
    def test_forges_address_answers(self):
        spoofer = Spoofer(seed=1)
        forged = spoofer.tamper(a_response())
        answers = forged.find_rrsets(RRType.A)
        assert answers and all(spoofer.is_poison(r) for r in answers)

    def test_guessed_id_rarely_matches(self):
        spoofer = Spoofer(seed=1)
        genuine = a_response()
        forged = spoofer.tamper(genuine)
        # The off-path attacker guesses the id; with a seeded rng this
        # particular draw must not happen to equal the genuine one.
        assert forged.message_id != genuine.message_id

    def test_race_loss_leaves_response_alone(self):
        spoofer = Spoofer(race_win_rate=0.0, seed=1)
        genuine = a_response()
        assert spoofer.tamper(genuine) is genuine

    def test_non_address_queries_ignored(self):
        spoofer = Spoofer(seed=1)
        query = Message.make_query(9, n("example.com"), RRType.NS)
        response = query.make_response()
        assert spoofer.tamper(response) is response


class TestPoisoner:
    VICTIM = "victim-bank.example"

    def poisoner(self):
        return Poisoner(victims=[n(self.VICTIM)], seed=1)

    def test_piggybacks_ds_and_glue_on_referrals(self):
        poisoner = self.poisoner()
        poisoned = poisoner.tamper(referral_response())
        ds = [r for r in poisoned.authority if r.rtype is RRType.DS]
        glue = [
            r
            for r in poisoned.additional
            if r.rtype is RRType.A and r.name == n(self.VICTIM)
        ]
        assert ds and poisoner.is_poison(ds[0])
        assert glue and poisoner.is_poison(glue[0])

    def test_preserves_genuine_id_and_question(self):
        genuine = referral_response()
        poisoned = self.poisoner().tamper(genuine)
        assert poisoned.message_id == genuine.message_id
        assert poisoned.question == genuine.question

    def test_skips_victims_on_their_own_resolution_path(self):
        poisoner = self.poisoner()
        own = referral_response(qname=f"www.{self.VICTIM}")
        assert poisoner.tamper(own) is own

    def test_answers_left_alone(self):
        poisoner = self.poisoner()
        answer = a_response()
        assert poisoner.tamper(answer) is answer


class TestReferralBomber:
    def test_fanout_names_are_fresh_each_volley(self):
        bomber = ReferralBomber(mode="fanout", fanout=5, seed=1)
        first = bomber.tamper(a_response())
        second = bomber.tamper(a_response())
        targets = lambda m: {
            ns.target for r in m.find_rrsets(RRType.NS, "authority") for ns in r
        }
        assert len(targets(first)) == 5
        assert targets(first).isdisjoint(targets(second))

    def test_fanout_offers_no_glue(self):
        bomber = ReferralBomber(mode="fanout", fanout=3, seed=1)
        bombed = bomber.tamper(a_response())
        assert not bombed.additional

    def test_loop_refers_upward_with_glue(self):
        bomber = ReferralBomber(
            mode="loop", loop_ns_address="10.0.0.1", seed=1
        )
        bombed = bomber.tamper(a_response())
        (ns,) = bombed.find_rrsets(RRType.NS, "authority")
        assert ns.name.is_root()
        assert bombed.additional  # glue pointing back into the loop


class TestSigBomber:
    def signed_response(self):
        real_key = DNSKEY(
            flags=DNSKEY.KSK_FLAGS,
            protocol=3,
            algorithm=Algorithm.RSASHA256,
            public_key=RSAPublicKey(
                modulus=(1 << 255) | 12345, exponent=65537
            ).to_bytes(),
        )
        keys = RRset(n("example.com"), RRType.DNSKEY, 3600, (real_key,))
        sig = RRSIG(
            type_covered=RRType.DNSKEY,
            algorithm=Algorithm.RSASHA256,
            labels=2,
            original_ttl=3600,
            expiration=2**31,
            inception=0,
            key_tag=real_key.key_tag(),
            signer=n("example.com"),
            signature=b"\x01" * 64,
        )
        sigs = RRset(n("example.com"), RRType.RRSIG, 3600, (sig,))
        query = Message.make_query(7, n("example.com"), RRType.DNSKEY)
        return real_key, query.make_response(answer=(keys, sigs))

    def test_forged_keys_collide_with_the_real_tag(self):
        real_key, response = self.signed_response()
        bomber = SigBomber(key_count=4, sigs_per_key=3, seed=1)
        bombed = bomber.tamper(response)
        (keyset,) = bombed.find_rrsets(RRType.DNSKEY)
        assert len(keyset.rdatas) == 5  # 4 forged + the genuine one
        assert all(
            key.key_tag() == real_key.key_tag() for key in keyset.rdatas
        )

    def test_signatures_inflate_quadratically(self):
        _, response = self.signed_response()
        bomber = SigBomber(key_count=4, sigs_per_key=3, seed=1)
        bombed = bomber.tamper(response)
        (sigset,) = bombed.find_rrsets(RRType.RRSIG)
        assert len(sigset.rdatas) == 4 * 3 + 1

    def test_unsigned_responses_untouched(self):
        bomber = SigBomber(seed=1)
        plain = a_response()
        assert bomber.tamper(plain) is plain


# ----------------------------------------------------------------------
# End-to-end acceptance: personas × hardening over a standard universe
# ----------------------------------------------------------------------

VICTIMS = (n("victim-bank.example."), n("victim-mail.example."))


@pytest.fixture(scope="module")
def matrix():
    workload = standard_workload(12, seed=3)
    names = [spec.name for spec in workload.domains]

    def factory():
        return standard_universe(workload, filler_count=200)

    adversaries = {
        "spoofer": lambda u: deploy_spoofer(u, seed=7),
        "poisoner": lambda u: deploy_poisoner(u, VICTIMS, seed=7),
        "fanout": lambda u: deploy_referral_bomber(u, mode="fanout", seed=7),
        "loop": lambda u: deploy_referral_bomber(u, mode="loop", seed=7),
        "sig-bomber": lambda u: deploy_sig_bomber(u, seed=7),
    }
    hardened = ResolverConfig()
    configs = {
        "hardened": hardened,
        "unhardened": dataclasses.replace(
            hardened, hardening=hardened.hardening.off()
        ),
    }
    reports = run_adversary_matrix(factory, names, adversaries, configs)
    return {(r.adversary, r.policy): r for r in reports}


class TestAcceptance:
    def test_hardened_cache_never_poisoned(self, matrix):
        for adversary in ("spoofer", "poisoner"):
            assert matrix[(adversary, "hardened")].poisoned_cache_entries == 0

    def test_unhardened_control_is_demonstrably_poisoned(self, matrix):
        for adversary in ("spoofer", "poisoner"):
            assert matrix[(adversary, "unhardened")].poisoned_cache_entries > 0

    def test_spoofs_are_detected_not_silently_eaten(self, matrix):
        assert matrix[("spoofer", "hardened")].hardening.spoofs_rejected > 0

    def test_poison_is_scrubbed_before_cache(self, matrix):
        cell = matrix[("poisoner", "hardened")].hardening
        assert cell.records_scrubbed > 0 or cell.glue_rejected > 0

    def test_amplification_capped_when_hardened(self, matrix):
        budget = ResolverConfig().hardening.max_upstream_sends
        for adversary in ("fanout", "loop"):
            hardened = matrix[(adversary, "hardened")]
            unhardened = matrix[(adversary, "unhardened")]
            assert unhardened.amplification > 3.0  # the attack works...
            assert hardened.upstream_sends < unhardened.upstream_sends
            assert hardened.upstream_sends / 12 <= budget  # ...but is capped

    def test_fanout_dies_on_the_ns_budget(self, matrix):
        assert matrix[("fanout", "hardened")].hardening.ns_budget_exhausted > 0

    def test_loop_dies_on_the_direction_check(self, matrix):
        assert matrix[("loop", "hardened")].hardening.referrals_rejected > 0

    def test_keytrap_crypto_blowup_and_cap(self, matrix):
        baseline = matrix[("none", "unhardened")].crypto_verify_calls
        unhardened = matrix[("sig-bomber", "unhardened")].crypto_verify_calls
        hardened_cell = matrix[("sig-bomber", "hardened")]
        assert unhardened > 10 * baseline
        assert hardened_cell.crypto_verify_calls < unhardened / 4
        assert hardened_cell.hardening.signature_budget_exhausted > 0
        per_resolution_cap = ResolverConfig().hardening.max_signature_validations
        assert hardened_cell.crypto_verify_calls <= per_resolution_cap * 12

    def test_no_adversary_control_unchanged_by_hardening(self, matrix):
        hardened = matrix[("none", "hardened")]
        unhardened = matrix[("none", "unhardened")]
        assert hardened.servfail == unhardened.servfail == 0
        assert hardened.upstream_sends == unhardened.upstream_sends
        # Case-2 leakage — the paper's core measurement — is untouched.
        assert hardened.case2_queries == unhardened.case2_queries
        assert hardened.hardening.total_rejections == 0
        assert hardened.hardening.budget_denials == 0
