"""Tests for the simulated clock, latency, capture, and network."""

import pytest

from repro.dnscore import Message, Name, RCode, RRType
from repro.netsim import (
    Capture,
    LatencyModel,
    Network,
    NetworkError,
    PacketRecord,
    SimClock,
    ZeroLatency,
)


def n(text):
    return Name.from_text(text)


class EchoServer:
    """Responds NOERROR/empty to everything; counts queries."""

    def __init__(self):
        self.seen = []

    def handle(self, query):
        self.seen.append(query)
        return query.make_response(rcode=RCode.NOERROR, authoritative=True)


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_rejects_backwards(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_start_offset(self):
        assert SimClock(start=100.0).now == 100.0


class TestLatencyModel:
    def test_base_rtt_stable_per_address(self):
        model = LatencyModel(seed=1)
        assert model.base_rtt("a") == model.base_rtt("a")

    def test_sample_within_bounds(self):
        model = LatencyModel(seed=1, min_base=0.01, max_base=0.05, jitter=0.002)
        for _ in range(100):
            rtt = model.sample("server")
            assert 0.01 <= rtt <= 0.052

    def test_deterministic_under_seed(self):
        a = [LatencyModel(seed=9).sample("x") for _ in range(10)]
        b = [LatencyModel(seed=9).sample("x") for _ in range(10)]
        assert a == b

    def test_distinct_addresses_distinct_bases(self):
        model = LatencyModel(seed=2)
        bases = {model.base_rtt(f"srv{i}") for i in range(20)}
        assert len(bases) > 1

    def test_zero_latency(self):
        assert ZeroLatency().sample("anything") == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            LatencyModel(min_base=0.5, max_base=0.1)


class TestNetwork:
    def make_network(self):
        network = Network(latency=ZeroLatency())
        server = EchoServer()
        network.register("198.51.100.1", server)
        return network, server

    def test_query_delivers_and_responds(self):
        network, server = self.make_network()
        query = Message.make_query(1, n("example.com"), RRType.A)
        response = network.query("client", "198.51.100.1", query)
        assert response.is_response()
        assert len(server.seen) == 1

    def test_unknown_address_raises(self):
        network, _ = self.make_network()
        query = Message.make_query(1, n("example.com"), RRType.A)
        with pytest.raises(NetworkError):
            network.query("client", "203.0.113.9", query)

    def test_duplicate_registration_rejected(self):
        network, _ = self.make_network()
        with pytest.raises(ValueError):
            network.register("198.51.100.1", EchoServer())

    def test_capture_records_both_directions(self):
        network, _ = self.make_network()
        query = Message.make_query(1, n("example.com"), RRType.A)
        network.query("client", "198.51.100.1", query)
        assert len(network.capture) == 2
        records = list(network.capture)
        assert records[0].is_query and not records[1].is_query
        assert records[0].dst == records[1].src == "198.51.100.1"

    def test_clock_advances_by_rtt(self):
        network = Network(latency=LatencyModel(seed=3))
        network.register("s", EchoServer())
        before = network.clock.now
        network.query("c", "s", Message.make_query(1, n("x.com"), RRType.A))
        assert network.clock.now > before

    def test_wire_sizes_recorded(self):
        network, _ = self.make_network()
        query = Message.make_query(1, n("example.com"), RRType.A)
        network.query("client", "198.51.100.1", query)
        assert all(record.wire_size > 12 for record in network.capture)

    def test_verified_roundtrip_mode_matches_fast_path(self):
        query = Message.make_query(1, n("example.com"), RRType.A, dnssec_ok=True)
        fast = Network(latency=ZeroLatency())
        fast.register("s", EchoServer())
        slow = Network(latency=ZeroLatency(), verify_wire_roundtrip=True)
        slow.register("s", EchoServer())
        fast.query("c", "s", query)
        slow.query("c", "s", query)
        fast_sizes = [r.wire_size for r in fast.capture]
        slow_sizes = [r.wire_size for r in slow.capture]
        assert fast_sizes == slow_sizes


class TestCaptureAnalysis:
    def populate(self):
        network = Network(latency=ZeroLatency())
        network.register("auth", EchoServer())
        network.register("dlv", EchoServer())
        for i, (rtype, dst) in enumerate(
            [
                (RRType.A, "auth"),
                (RRType.AAAA, "auth"),
                (RRType.DLV, "dlv"),
                (RRType.DLV, "dlv"),
                (RRType.DS, "auth"),
            ]
        ):
            network.query("client", dst, Message.make_query(i, n(f"d{i}.com"), rtype))
        return network.capture

    def test_queries_of_type_is_the_paper_filter(self):
        capture = self.populate()
        assert len(capture.queries_of_type(RRType.DLV)) == 2
        assert len(capture.queries_of_type(RRType.A)) == 1

    def test_queries_to(self):
        capture = self.populate()
        assert len(capture.queries_to("dlv")) == 2

    def test_histogram(self):
        histogram = self.populate().query_type_histogram()
        assert histogram[RRType.DLV] == 2
        assert histogram[RRType.DS] == 1

    def test_total_bytes_counts_everything(self):
        capture = self.populate()
        assert capture.total_bytes() == sum(r.wire_size for r in capture)

    def test_query_count(self):
        assert self.populate().query_count() == 5

    def test_response_for(self):
        capture = self.populate()
        query = capture.queries()[0]
        response = capture.response_for(query)
        assert response is not None
        assert response.message.message_id == query.message.message_id

    def test_clear(self):
        capture = self.populate()
        capture.clear()
        assert len(capture) == 0
