"""The event scheduler's determinism contract.

Three load-bearing properties:

* **Total order** — events dispatch by ``(time, priority, tiebreak,
  seq)``; any legal heap-insertion order of the same logical events
  produces the identical journal (Hypothesis permutation test).
* **Race semantics** — a response delivery at exactly the timeout
  instant wins (the query is answered, not dropped); regression-pinned
  because the network layer relies on it.
* **Strict hand-off** — exactly one runnable thread, bounded admission,
  pooled workers; sessions interleave only at clock suspensions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim import (
    EventScheduler,
    Priority,
    SchedulerError,
    SimClock,
)


def make_scheduler(max_concurrent=256):
    journal = []
    scheduler = EventScheduler(
        SimClock(), max_concurrent=max_concurrent, journal=journal
    )
    return scheduler, journal


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------


def test_sessions_interleave_at_clock_suspensions():
    scheduler, _ = make_scheduler()
    clock = scheduler.clock
    log = []

    def session(name, first, second):
        def run():
            log.append((name, clock.now, "start"))
            clock.advance(first)
            log.append((name, clock.now, "mid"))
            clock.advance(second)
            log.append((name, clock.now, "end"))
        return run

    with scheduler:
        scheduler.spawn(session("a", 0.5, 1.0), at=0.0, tiebreak=(0,))
        scheduler.spawn(session("b", 0.5, 1.0), at=0.25, tiebreak=(1,))
        scheduler.run()

    assert log == [
        ("a", 0.0, "start"),
        ("b", 0.25, "start"),
        ("a", 0.5, "mid"),
        ("b", 0.75, "mid"),
        ("a", 1.5, "end"),
        ("b", 1.75, "end"),
    ]


def test_clock_is_monotonic_and_jumps_to_event_times():
    scheduler, _ = make_scheduler()
    clock = scheduler.clock
    seen = []
    with scheduler:
        for when in (3.0, 1.0, 2.0):
            scheduler.call_at(when, lambda w=when: seen.append((w, clock.now)))
        scheduler.run()
    assert seen == [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    assert clock.now == 3.0


def test_delivery_beats_timeout_at_same_instant():
    """The timeout-vs-response race: a packet arriving exactly at the
    deadline is delivered first, so the waiter sees the answer."""
    scheduler, _ = make_scheduler()
    order = []
    with scheduler:
        scheduler.call_at(
            5.0, lambda: order.append("timeout"), priority=Priority.TIMEOUT
        )
        scheduler.call_at(
            5.0, lambda: order.append("delivery"), priority=Priority.DELIVERY
        )
        scheduler.call_at(
            5.0, lambda: order.append("timer"), priority=Priority.TIMER
        )
        scheduler.call_at(
            5.0, lambda: order.append("dispatch"), priority=Priority.DISPATCH
        )
        scheduler.run()
    assert order == ["delivery", "timeout", "dispatch", "timer"]


def test_timeout_vs_response_race_in_sessions():
    """Session-level regression: one session's delivery resume and
    another's timeout resume collide at t=1.0; the delivery must run
    first regardless of spawn order."""
    for flip in (False, True):
        scheduler, _ = make_scheduler()
        clock = scheduler.clock
        order = []

        def delivery():
            clock.advance(1.0, priority=Priority.DELIVERY)
            order.append("delivery")

        def timeout():
            clock.advance(1.0, priority=Priority.TIMEOUT)
            order.append("timeout")

        with scheduler:
            sessions = [("d", delivery), ("t", timeout)]
            if flip:
                sessions.reverse()
            for label, fn in sessions:
                scheduler.spawn(fn, label=label)
            scheduler.run()
        assert order == ["delivery", "timeout"], f"flip={flip}"


def test_tiebreak_overrides_insertion_order():
    scheduler, _ = make_scheduler()
    seen = []
    with scheduler:
        for user in (3, 1, 2, 0):
            scheduler.call_at(
                1.0,
                lambda u=user: seen.append(u),
                priority=Priority.DISPATCH,
                tiebreak=(user,),
            )
        scheduler.run()
    assert seen == [0, 1, 2, 3]


def test_seq_is_fifo_for_order_indifferent_events():
    scheduler, _ = make_scheduler()
    seen = []
    with scheduler:
        for i in range(4):
            scheduler.call_at(1.0, lambda i=i: seen.append(i))
        scheduler.run()
    assert seen == [0, 1, 2, 3]


def test_zero_delay_sleep_until_yields_to_same_time_events():
    """sleep_until(now) is a zero-length suspension: same-instant
    higher-priority events run before the session resumes."""
    scheduler, _ = make_scheduler()
    clock = scheduler.clock
    order = []

    def session():
        order.append("before")
        scheduler.call_at(
            clock.now, lambda: order.append("delivery"),
            priority=Priority.DELIVERY,
        )
        clock.sleep_until(clock.now, priority=Priority.TIMER)
        order.append("after")

    with scheduler:
        scheduler.spawn(session)
        scheduler.run()
    assert order == ["before", "delivery", "after"]


def test_sleep_until_past_deadline_clamps_to_now():
    scheduler, _ = make_scheduler()
    clock = scheduler.clock
    readings = []

    def session():
        clock.advance(2.0)
        readings.append(clock.sleep_until(1.0))  # already past

    with scheduler:
        scheduler.spawn(session)
        scheduler.run()
    assert readings == [2.0]
    assert clock.now == 2.0


# ----------------------------------------------------------------------
# Hypothesis: insertion order is irrelevant given tiebreaks
# ----------------------------------------------------------------------

# Logical events: (time-in-quarters, priority, tiebreak-id).  Times are
# dyadic so float comparisons are exact.
events_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.sampled_from(list(Priority)),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=12,
    unique=True,
)


def run_journal(events, order):
    scheduler, journal = make_scheduler()
    with scheduler:
        for index in order:
            quarters, priority, tie = events[index]
            scheduler.call_at(
                quarters / 4.0,
                lambda: None,
                priority=priority,
                tiebreak=(tie,),
                label=f"e{tie}",
            )
        scheduler.run()
    return journal


@settings(max_examples=60, deadline=None)
@given(events=events_strategy, data=st.data())
def test_any_insertion_order_yields_identical_journal(events, data):
    baseline = run_journal(events, range(len(events)))
    for seed in (1, 2, 3):
        permutation = data.draw(
            st.permutations(range(len(events))), label=f"perm{seed}"
        )
        assert run_journal(events, permutation) == baseline


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_session_spawn_order_is_irrelevant_given_tiebreaks(data):
    """Full-stack variant: sessions that advance the clock produce the
    same journal whatever order they were spawned in."""
    specs = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),  # start quarters
                st.integers(min_value=1, max_value=4),  # advance quarters
            ),
            min_size=1,
            max_size=6,
        )
    )

    def run_once(order):
        scheduler, journal = make_scheduler()
        clock = scheduler.clock

        def make(tie, advance_quarters):
            def session():
                clock.advance(advance_quarters / 4.0)
            return session

        with scheduler:
            for tie in order:
                start, advance = specs[tie]
                scheduler.spawn(
                    make(tie, advance),
                    at=start / 4.0,
                    label=f"s{tie}",
                    tiebreak=(tie,),
                )
            scheduler.run()
        return journal

    baseline = run_once(range(len(specs)))
    permutation = data.draw(st.permutations(range(len(specs))))
    assert run_once(permutation) == baseline


# ----------------------------------------------------------------------
# Admission control and the thread pool
# ----------------------------------------------------------------------


def test_admission_cap_bounds_concurrency_and_queues_fifo():
    scheduler, journal = make_scheduler(max_concurrent=2)
    clock = scheduler.clock
    finished = []

    def make(tie):
        def session():
            clock.advance(1.0)
            finished.append(tie)
        return session

    with scheduler:
        for tie in range(5):
            scheduler.spawn(make(tie), at=0.0, tiebreak=(tie,), label=f"s{tie}")
        stats = scheduler.run()

    assert stats.peak_active == 2
    assert stats.queued == 3
    assert stats.completed == 5
    # Pool threads are reused: never more than the admission cap.
    assert stats.threads_created <= 2
    # FIFO through the queue preserves tiebreak order.
    assert finished == [0, 1, 2, 3, 4]
    assert [label for _, kind, label in journal if kind == "queued"] == [
        "s2", "s3", "s4",
    ]


def test_pool_threads_are_reused_across_sessions():
    scheduler, _ = make_scheduler(max_concurrent=4)
    clock = scheduler.clock
    with scheduler:
        for tie in range(20):
            scheduler.spawn(
                lambda: clock.advance(0.25), at=tie * 1.0, tiebreak=(tie,)
            )
        stats = scheduler.run()
    assert stats.completed == 20
    assert stats.threads_created == 1  # sessions never overlap here


# ----------------------------------------------------------------------
# Failure and misuse
# ----------------------------------------------------------------------


def test_session_exception_surfaces_as_scheduler_error():
    scheduler, _ = make_scheduler()

    def boom():
        raise ValueError("lost my zone")

    with scheduler:
        scheduler.spawn(boom, label="broken")
        with pytest.raises(SchedulerError, match="broken"):
            scheduler.run()
    assert scheduler.stats.failed == 1


def test_failure_cause_is_preserved():
    scheduler, _ = make_scheduler()

    def boom():
        raise KeyError("cache")

    with scheduler:
        scheduler.spawn(boom)
        with pytest.raises(SchedulerError) as info:
            scheduler.run()
    assert isinstance(info.value.__cause__, KeyError)


def test_wait_until_outside_session_is_rejected():
    scheduler, _ = make_scheduler()
    with scheduler:
        with pytest.raises(SchedulerError):
            scheduler.wait_until(1.0)


def test_scheduling_in_the_past_is_rejected():
    scheduler, _ = make_scheduler()
    clock = scheduler.clock
    with scheduler:
        scheduler.call_at(5.0, lambda: None)
        scheduler.run()
        assert clock.now == 5.0
        with pytest.raises(ValueError):
            scheduler.call_at(4.0, lambda: None)


def test_run_until_stops_before_later_events():
    scheduler, _ = make_scheduler()
    seen = []
    with scheduler:
        scheduler.call_at(1.0, lambda: seen.append(1.0))
        scheduler.call_at(10.0, lambda: seen.append(10.0))
        scheduler.run(until=5.0)
        assert seen == [1.0]
        assert scheduler.pending() == 1
        scheduler.run()
    assert seen == [1.0, 10.0]


def test_clock_rejects_second_scheduler_and_unbinds_on_close():
    clock = SimClock()
    scheduler = EventScheduler(clock)
    with pytest.raises(Exception):
        EventScheduler(clock)
    scheduler.close()
    assert clock.scheduler is None
    # After close, serial semantics return.
    clock.advance(1.5)
    assert clock.now == 1.5
    # And a fresh scheduler can bind again.
    with EventScheduler(clock) as second:
        assert clock.scheduler is second


def test_serial_clock_without_scheduler_is_untouched():
    clock = SimClock()
    clock.advance(2.0)
    clock.sleep_until(3.0)
    clock.sleep_until(1.0)  # past: clamps, no-op
    assert clock.now == 3.0
