"""Property-based round-trip tests for the master-file serialiser."""

from hypothesis import given, settings, strategies as st

from repro.dnscore import A, MX, Name, NS, RRType, TXT
from repro.zones import ZoneBuilder, standard_ns_hosts, zone_from_text, zone_to_text

_LABEL = st.text(alphabet="abcdefghij", min_size=1, max_size=8)


@st.composite
def random_zones(draw):
    builder = ZoneBuilder(Name(["zone", "test"]))
    builder.with_ns(standard_ns_hosts(Name(["zone", "test"]), ["10.3.0.1"]))
    used = set()
    for index in range(draw(st.integers(0, 8))):
        label = draw(_LABEL)
        kind = draw(st.sampled_from(["a", "mx", "txt", "ns"]))
        key = (label, kind)
        if key in used:
            continue
        used.add(key)
        owner = Name([label, "zone", "test"])
        if kind == "a":
            if builder.zone.get(owner, RRType.A) is None:
                builder.with_rrset(
                    owner, RRType.A, [A(f"10.3.1.{index + 1}")]
                )
        elif kind == "mx":
            if builder.zone.get(owner, RRType.MX) is None:
                builder.with_rrset(
                    owner,
                    RRType.MX,
                    [MX(draw(st.integers(0, 99)), Name([draw(_LABEL), "example", "net"]))],
                )
        elif kind == "txt":
            if builder.zone.get(owner, RRType.TXT) is None:
                text = draw(
                    st.text(
                        alphabet="abcdefgh 0123456789=", min_size=0, max_size=30
                    )
                )
                builder.with_rrset(owner, RRType.TXT, [TXT((text,))])
        elif kind == "ns":
            if builder.zone.get(owner, RRType.NS) is None:
                builder.with_rrset(
                    owner, RRType.NS, [NS(Name([draw(_LABEL), "example", "org"]))]
                )
    return builder.build()


class TestMasterFileProperties:
    @settings(max_examples=60)
    @given(random_zones())
    def test_roundtrip_preserves_records(self, zone):
        parsed = zone_from_text(zone_to_text(zone))
        assert parsed.origin == zone.origin
        assert len(parsed) == len(zone)
        for rrset in zone.rrsets():
            restored = parsed.get(rrset.name, rrset.rtype)
            assert restored is not None
            assert set(restored.rdatas) == set(rrset.rdatas)

    @settings(max_examples=60)
    @given(random_zones())
    def test_serialisation_is_stable(self, zone):
        once = zone_to_text(zone)
        twice = zone_to_text(zone_from_text(once))
        assert once == twice

    @settings(max_examples=30)
    @given(random_zones())
    def test_roundtripped_zone_signs_and_serves(self, zone):
        from repro.crypto import KeyPool
        from repro.zones.zone import LookupOutcome

        parsed = zone_from_text(zone_to_text(zone))
        pool = KeyPool(seed=171, pool_size=8, modulus_bits=256)
        parsed.sign(pool.keys_for_zone(parsed.origin))
        result = parsed.lookup(
            Name(["definitely-missing", "zone", "test"]), RRType.A, dnssec_ok=True
        )
        assert result.outcome is LookupOutcome.NXDOMAIN
