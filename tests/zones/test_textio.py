"""Tests for master-file serialisation of zones."""

import pytest

from repro.crypto import KeyPool
from repro.dnscore import (
    A,
    Algorithm,
    DigestType,
    DLV,
    DNSKEY,
    DS,
    MX,
    Name,
    NS,
    RRType,
    SOA,
    TXT,
)
from repro.zones import (
    MasterFileError,
    ZoneBuilder,
    rdata_from_text,
    rdata_to_text,
    standard_ns_hosts,
    zone_from_text,
    zone_to_text,
)


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=101, pool_size=8, modulus_bits=256)


def sample_zone(signed=False):
    builder = ZoneBuilder(n("example.com"))
    builder.with_ns(standard_ns_hosts(n("example.com"), ["192.0.2.53"]))
    builder.with_address(n("example.com"), ipv4="192.0.2.80", ipv6="2001:db8::80")
    builder.with_rrset(n("example.com"), RRType.MX, [MX(10, n("mail.example.com"))])
    builder.with_rrset(n("example.com"), RRType.TXT, [TXT(("dlv=1", "v=spf1 -all"))])
    builder.with_rrset(
        n("sub.example.com"),
        RRType.DS,
        [DS(4242, Algorithm.RSASHA256, DigestType.SHA256, b"\xab" * 32)],
    )
    builder.with_rrset(
        n("sub.example.com"), RRType.NS, [NS(n("ns1.sub.example.com"))]
    )
    if signed:
        return builder.signed(POOL.keys_for_zone(n("example.com")))
    return builder.build()


RDATA_CASES = [
    (RRType.A, A("192.0.2.1")),
    (RRType.MX, MX(5, n("mail.example.net"))),
    (RRType.SOA, SOA(n("ns1.example.com"), n("hostmaster.example.com"), 9)),
    (RRType.TXT, TXT(("dlv=0", "hello world"))),
    (RRType.DS, DS(7, Algorithm.RSASHA256, DigestType.SHA256, b"\x01\x02")),
    (RRType.DLV, DLV(8, Algorithm.RSASHA256, DigestType.SHA1, b"\x03\x04")),
    (RRType.DNSKEY, DNSKEY(257, 3, Algorithm.RSASHA256, b"\x05\x06\x07")),
]


class TestRdataText:
    @pytest.mark.parametrize("rtype,rdata", RDATA_CASES, ids=lambda v: str(v))
    def test_roundtrip(self, rtype, rdata):
        if not isinstance(rtype, RRType):
            pytest.skip("id param")
        assert rdata_from_text(rtype, rdata_to_text(rdata)) == rdata

    def test_dlv_text_is_ds_shaped(self):
        dlv = DLV(8, Algorithm.RSASHA256, DigestType.SHA256, b"\xaa")
        assert rdata_to_text(dlv).startswith("8 8 2 ")

    def test_bad_rdata_raises(self):
        with pytest.raises(MasterFileError):
            rdata_from_text(RRType.A, "not-an-ip")
        with pytest.raises(MasterFileError):
            rdata_from_text(RRType.MX, "10")

    def test_txt_requires_quotes(self):
        with pytest.raises(MasterFileError):
            rdata_from_text(RRType.TXT, "unquoted")


class TestZoneRoundtrip:
    def test_unsigned_roundtrip(self):
        zone = sample_zone()
        text = zone_to_text(zone)
        parsed = zone_from_text(text)
        assert parsed.origin == zone.origin
        assert len(parsed) == len(zone)
        for rrset in zone.rrsets():
            restored = parsed.get(rrset.name, rrset.rtype)
            assert restored is not None
            assert set(restored.rdatas) == set(rrset.rdatas)
            assert restored.ttl == rrset.ttl

    def test_signed_zone_exports_and_reimports_unsigned(self):
        zone = sample_zone(signed=True)
        text = zone_to_text(zone)
        assert "NSEC" in text and "DNSKEY" in text
        parsed = zone_from_text(text)
        assert not parsed.signed
        # NSEC skipped on parse; DNSKEY kept as ordinary data.
        assert parsed.get(n("example.com"), RRType.NSEC) is None
        assert parsed.get(n("example.com"), RRType.DNSKEY) is not None
        # Re-signing works (fresh chain).
        parsed_copy = zone_from_text(text)
        # remove imported DNSKEY so sign() can publish its own
        assert parsed_copy.get(n("example.com"), RRType.DNSKEY) is not None

    def test_relative_owner_names(self):
        text = (
            "$ORIGIN example.com.\n"
            "$TTL 600\n"
            "@-ignored 600 IN A 192.0.2.1\n"
        )
        # '@-ignored' is taken as a relative label; ensure it resolves
        # under the origin rather than erroring.
        zone = zone_from_text(
            text.replace("@-ignored", "www")
        )
        assert zone.get(n("www.example.com"), RRType.A) is not None

    def test_comments_and_blank_lines(self):
        text = (
            "$ORIGIN example.com.\n"
            "\n"
            "; a comment\n"
            "www 600 IN A 192.0.2.1  ; trailing comment\n"
        )
        zone = zone_from_text(text)
        assert zone.get(n("www.example.com"), RRType.A) is not None

    def test_missing_origin_rejected(self):
        with pytest.raises(MasterFileError):
            zone_from_text("www 600 IN A 192.0.2.1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(MasterFileError):
            zone_from_text(
                "$ORIGIN example.com.\nwww 600 IN WKS 192.0.2.1\n"
            )

    def test_non_in_class_rejected(self):
        with pytest.raises(MasterFileError):
            zone_from_text("$ORIGIN example.com.\nwww 600 CH A 192.0.2.1\n")

    def test_registry_zone_fixture_loads(self):
        """A hand-written DLV registry fragment loads and serves."""
        text = (
            "$ORIGIN dlv.isc.org.\n"
            "$TTL 3600\n"
            "dlv.isc.org. 3600 IN SOA ns1.dlv.isc.org. hostmaster.dlv.isc.org. 1 7200 3600 1209600 3600\n"
            "dlv.isc.org. 3600 IN NS ns1.dlv.isc.org.\n"
            "ns1 3600 IN A 192.0.2.200\n"
            "example.com.dlv.isc.org. 3600 IN DLV 4242 8 2 abcd\n"
        )
        zone = zone_from_text(text)
        rrset = zone.get(n("example.com.dlv.isc.org"), RRType.DLV)
        assert rrset is not None
        assert rrset.first().key_tag == 4242
