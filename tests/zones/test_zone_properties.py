"""Property-based tests over randomly populated zones.

These pin down the zone invariants everything above relies on:
lookup classification is total and consistent, the NSEC chain always
covers exactly the non-existent names, and every served RRSIG verifies.
"""

from hypothesis import given, settings, strategies as st

from repro.crypto import KeyPool
from repro.dnscore import (
    A,
    Name,
    RRType,
    TXT,
    canonical_sort,
    name_between,
)
from repro.zones import (
    LookupOutcome,
    ZoneBuilder,
    standard_ns_hosts,
    verify_rrset_signature,
)


POOL = KeyPool(seed=41, pool_size=8, modulus_bits=256)

_LABEL = st.text(alphabet="abcdefgh", min_size=1, max_size=5)


@st.composite
def populated_zones(draw):
    """A signed zone under .test with random hosts and delegations."""
    builder = ZoneBuilder(Name(["test"]))
    builder.with_ns(standard_ns_hosts(Name(["test"]), ["10.2.0.1"]))
    host_labels = draw(
        st.lists(_LABEL, min_size=0, max_size=6, unique=True)
    )
    delegation_labels = draw(
        st.lists(
            st.text(alphabet="mnopqr", min_size=1, max_size=5),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    for index, label in enumerate(host_labels):
        builder.with_rrset(
            Name([label, "test"]), RRType.A, [A(f"10.2.1.{index + 1}")]
        )
    for index, label in enumerate(delegation_labels):
        builder.delegate(
            Name([label, "test"]),
            standard_ns_hosts(Name([label, "test"]), [f"10.2.2.{index + 1}"]),
        )
    zone = builder.signed(POOL.keys_for_zone(Name(["test"])))
    return zone, set(host_labels), set(delegation_labels)


class TestLookupClassification:
    @settings(max_examples=50, deadline=None)
    @given(populated_zones(), _LABEL)
    def test_every_probe_classified_consistently(self, world, probe_label):
        zone, hosts, delegations = world
        probe = Name([probe_label, "test"])
        result = zone.lookup(probe, RRType.A, dnssec_ok=True)
        if probe_label in delegations:
            assert result.outcome is LookupOutcome.DELEGATION
        elif probe_label in hosts:
            assert result.outcome is LookupOutcome.ANSWER
        elif zone.has_name(probe):
            assert result.outcome is LookupOutcome.NODATA
        else:
            assert result.outcome is LookupOutcome.NXDOMAIN

    @settings(max_examples=50, deadline=None)
    @given(populated_zones(), _LABEL)
    def test_nxdomain_nsec_actually_covers(self, world, probe_label):
        zone, hosts, delegations = world
        probe = Name([probe_label, "test"])
        result = zone.lookup(probe, RRType.A, dnssec_ok=True)
        if result.outcome is not LookupOutcome.NXDOMAIN:
            return
        nsec_rrsets = [r for r in result.authority if r.rtype is RRType.NSEC]
        assert len(nsec_rrsets) == 1
        nsec = nsec_rrsets[0]
        assert name_between(probe, nsec.name, nsec.first().next_name)

    @settings(max_examples=30, deadline=None)
    @given(populated_zones(), _LABEL)
    def test_served_rrsigs_verify(self, world, probe_label):
        zone, hosts, delegations = world
        probe = Name([probe_label, "test"])
        result = zone.lookup(probe, RRType.A, dnssec_ok=True)
        sections = list(result.answer) + list(result.authority)
        rrsets = {(r.name, r.rtype): r for r in sections}
        for rrset in sections:
            if rrset.rtype is RRType.RRSIG:
                covered_type = rrset.first().type_covered
                covered = rrsets.get((rrset.name, covered_type))
                assert covered is not None
                key = (
                    zone.keyset.ksk.dnskey
                    if covered_type is RRType.DNSKEY
                    else zone.keyset.zsk.dnskey
                )
                assert verify_rrset_signature(covered, rrset.first(), key)


class TestNsecChainProperties:
    @settings(max_examples=50, deadline=None)
    @given(populated_zones())
    def test_chain_is_a_single_cycle(self, world):
        zone, _, _ = world
        nsec_owners = [
            rrset.name for rrset in zone.rrsets() if rrset.rtype is RRType.NSEC
        ]
        ordered = canonical_sort(nsec_owners)
        # Follow the chain from the apex; it must visit every owner
        # exactly once and return to the start.
        visited = []
        current = ordered[0]
        for _ in range(len(ordered)):
            visited.append(current)
            current = zone.get(current, RRType.NSEC).first().next_name
        assert current == ordered[0]
        assert sorted(visited, key=Name.canonical_key) == ordered

    @settings(max_examples=50, deadline=None)
    @given(populated_zones())
    def test_delegation_nsec_has_no_ds_bit(self, world):
        zone, _, delegations = world
        for label in delegations:
            nsec = zone.get(Name([label, "test"]), RRType.NSEC).first()
            assert RRType.DS not in nsec.types
            assert RRType.NS in nsec.types
