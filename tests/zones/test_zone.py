"""Tests for the zone model: lookup semantics and DNSSEC signing."""

import pytest

from repro.crypto import KeyPool, verify_ds_matches
from repro.dnscore import (
    A,
    CNAME,
    DS,
    Name,
    NS,
    NSEC,
    RRType,
    RRset,
    TXT,
    canonical_sort,
    name_between,
)
from repro.zones import (
    LookupOutcome,
    Zone,
    ZoneBuilder,
    ZoneError,
    build_leaf_zone,
    make_soa,
    standard_ns_hosts,
    verify_rrset_signature,
)


def n(text):
    return Name.from_text(text)


POOL = KeyPool(seed=11, pool_size=8, modulus_bits=256)


def build_com_zone(signed=True, with_child_ds=True):
    """A little com zone with one secure and one insecure delegation."""
    builder = ZoneBuilder(n("com"))
    builder.with_ns(standard_ns_hosts(n("com"), ["192.0.2.1"]))
    child_keys = POOL.keys_for_zone(n("secure.com")) if with_child_ds else None
    builder.delegate(
        n("secure.com"),
        standard_ns_hosts(n("secure.com"), ["192.0.2.10"]),
        child_keyset=child_keys,
    )
    builder.delegate(
        n("insecure.com"),
        standard_ns_hosts(n("insecure.com"), ["192.0.2.20"]),
    )
    builder.with_rrset(n("txt.com"), RRType.TXT, [TXT(("dlv=1",))])
    if signed:
        return builder.signed(POOL.keys_for_zone(n("com")))
    return builder.build()


class TestZoneConstruction:
    def test_rejects_out_of_zone_records(self):
        zone = Zone(n("com"))
        with pytest.raises(ZoneError):
            zone.add(n("example.net"), RRType.A, [A("192.0.2.1")])

    def test_rejects_duplicate_rrset(self):
        zone = Zone(n("com"))
        zone.add(n("a.com"), RRType.A, [A("192.0.2.1")])
        with pytest.raises(ZoneError):
            zone.add(n("a.com"), RRType.A, [A("192.0.2.2")])

    def test_rejects_modification_after_signing(self):
        zone = build_com_zone()
        with pytest.raises(ZoneError):
            zone.add(n("late.com"), RRType.A, [A("192.0.2.9")])

    def test_rejects_double_signing(self):
        zone = build_com_zone()
        with pytest.raises(ZoneError):
            zone.sign(POOL.keys_for_zone(n("com")))

    def test_empty_non_terminals_exist(self):
        zone = Zone(n("org"))
        zone.set_soa(make_soa(n("org")))
        zone.add(n("deep.sub.example.org"), RRType.A, [A("192.0.2.1")])
        assert zone.has_name(n("sub.example.org"))
        assert zone.has_name(n("example.org"))

    def test_soa_required_for_negative_answers(self):
        zone = Zone(n("com"))
        with pytest.raises(ZoneError):
            zone.lookup(n("missing.com"), RRType.A)


class TestLookupSemantics:
    def test_answer(self):
        zone = build_com_zone()
        result = zone.lookup(n("txt.com"), RRType.TXT)
        assert result.outcome is LookupOutcome.ANSWER
        assert result.answer[0].rtype is RRType.TXT

    def test_answer_includes_rrsig_when_do(self):
        zone = build_com_zone()
        result = zone.lookup(n("txt.com"), RRType.TXT, dnssec_ok=True)
        types = [rrset.rtype for rrset in result.answer]
        assert types == [RRType.TXT, RRType.RRSIG]

    def test_delegation_referral(self):
        zone = build_com_zone()
        result = zone.lookup(n("secure.com"), RRType.A)
        assert result.outcome is LookupOutcome.DELEGATION
        assert result.authority[0].rtype is RRType.NS
        glue_names = [rrset.name for rrset in result.additional]
        assert n("ns1.secure.com") in glue_names

    def test_delegation_applies_to_names_below_cut(self):
        zone = build_com_zone()
        result = zone.lookup(n("www.secure.com"), RRType.A)
        assert result.outcome is LookupOutcome.DELEGATION
        assert result.authority[0].name == n("secure.com")

    def test_secure_delegation_carries_ds(self):
        zone = build_com_zone()
        result = zone.lookup(n("secure.com"), RRType.A, dnssec_ok=True)
        types = [rrset.rtype for rrset in result.authority]
        assert RRType.DS in types
        assert RRType.RRSIG in types

    def test_insecure_delegation_carries_nsec_no_ds_proof(self):
        zone = build_com_zone()
        result = zone.lookup(n("insecure.com"), RRType.A, dnssec_ok=True)
        types = [rrset.rtype for rrset in result.authority]
        assert RRType.DS not in types
        assert RRType.NSEC in types
        nsec_rrset = next(r for r in result.authority if r.rtype is RRType.NSEC)
        assert RRType.DS not in nsec_rrset.first().types

    def test_ds_query_at_cut_answered_by_parent(self):
        zone = build_com_zone()
        result = zone.lookup(n("secure.com"), RRType.DS, dnssec_ok=True)
        assert result.outcome is LookupOutcome.ANSWER
        assert result.answer[0].rtype is RRType.DS

    def test_ds_query_at_insecure_cut_is_nodata_with_nsec(self):
        zone = build_com_zone()
        result = zone.lookup(n("insecure.com"), RRType.DS, dnssec_ok=True)
        assert result.outcome is LookupOutcome.NODATA
        types = [rrset.rtype for rrset in result.authority]
        assert RRType.SOA in types and RRType.NSEC in types

    def test_nxdomain_with_covering_nsec(self):
        zone = build_com_zone()
        result = zone.lookup(n("nonexistent.com"), RRType.A, dnssec_ok=True)
        assert result.outcome is LookupOutcome.NXDOMAIN
        nsec_rrsets = [r for r in result.authority if r.rtype is RRType.NSEC]
        assert len(nsec_rrsets) == 1
        nsec = nsec_rrsets[0]
        assert name_between(
            n("nonexistent.com"), nsec.name, nsec.first().next_name
        )

    def test_nodata_for_existing_name_wrong_type(self):
        zone = build_com_zone()
        result = zone.lookup(n("txt.com"), RRType.A)
        assert result.outcome is LookupOutcome.NODATA

    def test_cname_interception(self):
        builder = ZoneBuilder(n("example.com"))
        builder.with_ns(standard_ns_hosts(n("example.com"), ["192.0.2.1"]))
        builder.with_rrset(
            n("alias.example.com"), RRType.CNAME, [CNAME(n("real.example.com"))]
        )
        builder.with_address(n("real.example.com"), ipv4="192.0.2.5")
        zone = builder.build()
        result = zone.lookup(n("alias.example.com"), RRType.A)
        assert result.outcome is LookupOutcome.CNAME
        assert result.answer[0].rtype is RRType.CNAME

    def test_out_of_zone_lookup_raises(self):
        zone = build_com_zone()
        with pytest.raises(ZoneError):
            zone.lookup(n("example.net"), RRType.A)

    def test_unsigned_zone_omits_dnssec_material(self):
        zone = build_com_zone(signed=False)
        result = zone.lookup(n("nonexistent.com"), RRType.A, dnssec_ok=True)
        types = [rrset.rtype for rrset in result.authority]
        assert RRType.NSEC not in types


class TestSigning:
    def test_dnskey_published_at_apex(self):
        zone = build_com_zone()
        result = zone.lookup(n("com"), RRType.DNSKEY, dnssec_ok=True)
        assert result.outcome is LookupOutcome.ANSWER
        assert result.answer[0].rtype is RRType.DNSKEY
        assert len(result.answer[0]) == 2  # KSK + ZSK

    def test_rrsig_verifies_with_zsk(self):
        zone = build_com_zone()
        txt = zone.get(n("txt.com"), RRType.TXT)
        rrsig = zone.rrsig_for(n("txt.com"), RRType.TXT).first()
        assert verify_rrset_signature(txt, rrsig, zone.keyset.zsk.dnskey)

    def test_dnskey_rrset_signed_by_ksk(self):
        zone = build_com_zone()
        dnskeys = zone.get(n("com"), RRType.DNSKEY)
        rrsig = zone.rrsig_for(n("com"), RRType.DNSKEY).first()
        assert verify_rrset_signature(dnskeys, rrsig, zone.keyset.ksk.dnskey)
        assert not verify_rrset_signature(dnskeys, rrsig, zone.keyset.zsk.dnskey)

    def test_signature_fails_for_tampered_rrset(self):
        zone = build_com_zone()
        rrsig = zone.rrsig_for(n("txt.com"), RRType.TXT).first()
        forged = RRset(n("txt.com"), RRType.TXT, 3600, (TXT(("dlv=0",)),))
        assert not verify_rrset_signature(forged, rrsig, zone.keyset.zsk.dnskey)

    def test_ds_in_parent_matches_child_ksk(self):
        zone = build_com_zone()
        ds = zone.get(n("secure.com"), RRType.DS).first()
        child_keys = POOL.keys_for_zone(n("secure.com"))
        assert verify_ds_matches(n("secure.com"), child_keys.ksk.dnskey, ds)

    def test_rrsig_cache_returns_same_object(self):
        zone = build_com_zone()
        first = zone.rrsig_for(n("txt.com"), RRType.TXT)
        second = zone.rrsig_for(n("txt.com"), RRType.TXT)
        assert first is second

    def test_unsigned_zone_has_no_rrsigs(self):
        zone = build_com_zone(signed=False)
        with pytest.raises(ZoneError):
            zone.rrsig_for(n("txt.com"), RRType.TXT)


class TestNsecChain:
    def test_chain_closes_in_canonical_order(self):
        zone = build_com_zone()
        owners = canonical_sort(
            {rrset.name for rrset in zone.rrsets() if rrset.rtype is RRType.NSEC}
        )
        for index, owner in enumerate(owners):
            nsec = zone.get(owner, RRType.NSEC).first()
            expected_next = owners[(index + 1) % len(owners)]
            assert nsec.next_name == expected_next

    def test_covering_nsec_covers_query(self):
        zone = build_com_zone()
        for missing in ("aaa.com", "mmmm.com", "zzz.com", "deep.under.com"):
            nsec_rrset = zone.covering_nsec(n(missing))
            nsec = nsec_rrset.first()
            assert name_between(n(missing), nsec_rrset.name, nsec.next_name)

    def test_covering_nsec_rejects_existing_name(self):
        zone = build_com_zone()
        with pytest.raises(ZoneError):
            zone.covering_nsec(n("txt.com"))

    def test_nsec_bitmap_lists_owner_types(self):
        zone = build_com_zone()
        nsec = zone.get(n("txt.com"), RRType.NSEC).first()
        assert RRType.TXT in nsec.types
        assert RRType.NSEC in nsec.types
        assert RRType.RRSIG in nsec.types


class TestLeafZoneBuilder:
    def test_leaf_zone_answers_a(self):
        zone = build_leaf_zone(
            n("example.com"), ["192.0.2.53"], "192.0.2.80",
            keyset=POOL.keys_for_zone(n("example.com")),
        )
        result = zone.lookup(n("example.com"), RRType.A, dnssec_ok=True)
        assert result.outcome is LookupOutcome.ANSWER

    def test_leaf_zone_with_aaaa(self):
        zone = build_leaf_zone(
            n("example.com"), ["192.0.2.53"], "192.0.2.80",
            aaaa_address="2001:db8::80",
        )
        result = zone.lookup(n("example.com"), RRType.AAAA)
        assert result.outcome is LookupOutcome.ANSWER
