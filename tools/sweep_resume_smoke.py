#!/usr/bin/env python
"""CI smoke: kill a stored sweep mid-run, resume it, prove identity.

The end-to-end crash-recovery scenario, as a standalone script the CI
job (and any operator) can run:

1. compute the uninterrupted serial **reference** result;
2. run the same sweep against a fresh store in a child process that
   SIGTERMs itself after its second cell commit (a genuine mid-run
   kill — the child must die by signal, not finish);
3. **bit-flip** one surviving cell file on disk;
4. **resume** the sweep in this process, with a one-shot injected
   worker crash on the never-committed shard (where ``fork`` exists);
5. assert the resumed merge is **byte-identical** to the reference,
   that cells were actually reused, and that no worker processes were
   left behind;
6. write ``SWEEP_RESUME_STATS.json`` (reused vs re-run cells, store
   and executor health counters) for the CI artifact upload.

Exit status 0 on success, 1 with a message on any violated assertion.

Run:  PYTHONPATH=src python tools/sweep_resume_smoke.py
      PYTHONPATH=src python tools/sweep_resume_smoke.py --domains 20 --shards 4
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    FaultInjection,
    MetricsRegistry,
    ResultStore,
    SerialExecutor,
    SweepJournal,
    result_fingerprint,
    run_sharded_experiment,
    run_stored_sweep,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config  # noqa: E402

STATS_PATH = REPO_ROOT / "SWEEP_RESUME_STATS.json"

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys

    from repro.core import ResultStore, run_stored_sweep
    from repro.core import standard_universe_factory, standard_workload
    from repro.resolver import correct_bind_config

    root = sys.argv[1]
    domains, filler, shards, seed, abort_after = map(int, sys.argv[2:7])
    factory = standard_universe_factory(
        domains, filler_count=filler, workload_seed=seed
    )
    names = standard_workload(domains, seed=seed).names(domains)
    run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=seed,
        shards=shards,
        store=ResultStore(root, abort_after_commits=abort_after),
    )
    sys.exit(7)  # unreachable unless the SIGTERM injection failed
    """
)


def fail(message: str) -> None:
    print(f"FAIL {message}")
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--domains", type=int, default=12)
    parser.add_argument("--filler", type=int, default=150)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--abort-after", type=int, default=2)
    args = parser.parse_args(argv)
    if not 0 < args.abort_after < args.shards:
        parser.error("--abort-after must leave at least one cell unrun")

    began = time.perf_counter()
    factory = standard_universe_factory(
        args.domains, filler_count=args.filler, workload_seed=args.seed
    )
    names = standard_workload(args.domains, seed=args.seed).names(
        args.domains
    )

    # 1. Reference: the uninterrupted serial run.
    reference = run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=args.seed,
        shards=args.shards,
        executor=SerialExecutor(),
    )
    print(f"  ok reference run ({len(names)} names, {args.shards} shards)")

    workdir = Path(tempfile.mkdtemp(prefix="sweep-resume-smoke-"))
    store_root = workdir / "store"

    # 2. Child sweep, killed by its own store after N commits.
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    child = subprocess.run(
        [
            sys.executable, "-c", CHILD_SCRIPT, str(store_root),
            str(args.domains), str(args.filler), str(args.shards),
            str(args.seed), str(args.abort_after),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if child.returncode != -signal.SIGTERM:
        fail(
            f"child sweep should die by SIGTERM, got rc={child.returncode}\n"
            f"{child.stdout}{child.stderr}"
        )
    committed = sorted(store_root.glob("*/*.cell"))
    if len(committed) != args.abort_after:
        fail(f"expected {args.abort_after} committed cells, found {len(committed)}")
    print(f"  ok child killed mid-sweep (rc=-SIGTERM, {len(committed)} cells survive)")

    # 3. Corrupt one survivor.
    victim = committed[0]
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))
    print(f"  ok bit-flipped {victim.name}")

    # 4. Resume, with an injected one-shot worker crash on the shard
    #    the serial child never reached.
    injection = None
    if "fork" in multiprocessing.get_all_start_methods():
        marker_dir = workdir / "markers"
        marker_dir.mkdir()
        injection = FaultInjection(
            marker_dir=str(marker_dir),
            crash_once_cells=frozenset({args.shards - 1}),
        )
    metrics = MetricsRegistry()
    outcome = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=args.seed,
        shards=args.shards,
        store=ResultStore(store_root),
        journal=SweepJournal(workdir / "journal.jsonl"),
        metrics=metrics,
        injection=injection,
        retries=2,
        backoff_base=0.01,
    )

    # 5. The assertions that make this a smoke *test*.
    if outcome.quarantined:
        fail(f"resume quarantined cells: {[c.describe() for c in outcome.quarantined]}")
    if result_fingerprint(outcome.result) != result_fingerprint(reference):
        fail("resumed sweep is NOT byte-identical to the reference")
    if outcome.cells_reused < 1:
        fail("resume reused no cells")
    if outcome.store_stats.corrupt_detected != 1:
        fail("the corrupted cell was not detected")
    if injection is not None and outcome.health.worker_lost != 1:
        fail("the injected worker crash was not observed")
    for process in multiprocessing.active_children():
        process.join(timeout=5)
    if multiprocessing.active_children():
        fail("worker processes left behind")
    print(
        "  ok resumed sweep byte-identical to reference "
        f"({outcome.cells_reused} reused, {outcome.cells_rerun} re-run)"
    )

    # 6. The artifact.
    stats = {
        "domains": args.domains,
        "filler": args.filler,
        "shards": args.shards,
        "seed": args.seed,
        "abort_after_commits": args.abort_after,
        "injected_worker_crash": injection is not None,
        "cells_total": outcome.cells_total,
        "cells_reused": outcome.cells_reused,
        "cells_rerun": outcome.cells_rerun,
        "quarantined": len(outcome.quarantined),
        "store": {
            "commits": outcome.store_stats.commits,
            "reuses": outcome.store_stats.reuses,
            "misses": outcome.store_stats.misses,
            "corrupt_detected": outcome.store_stats.corrupt_detected,
        },
        "executor": {
            "cells_ok": outcome.health.cells_ok,
            "retries": outcome.health.retries,
            "worker_lost": outcome.health.worker_lost,
            "worker_restarts": outcome.health.worker_restarts,
            "timeouts": outcome.health.timeouts,
            "quarantined": outcome.health.quarantined,
        },
        "metrics": metrics.snapshot()["counters"],
        "elapsed_seconds": round(time.perf_counter() - began, 3),
    }
    STATS_PATH.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    print(f"  ok wrote {STATS_PATH.name}")
    print("sweep-resume smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
