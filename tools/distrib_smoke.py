#!/usr/bin/env python
"""CI smoke: a distributed sweep survives a SIGKILLed worker.

The end-to-end dead-worker-takeover scenario, as a standalone script
the CI job (and any operator pointing workers at a shared directory)
can run:

1. compute the uninterrupted serial **reference** result;
2. publish the sweep manifest into a fresh shared store;
3. start a **doomed** worker that SIGKILLs itself right after its
   first lease claim — mid-cell, lease held, heartbeat silenced;
4. verify exactly one orphaned, uncommitted lease is left behind;
5. start two **survivor** workers with a short TTL: one takes the
   orphaned lease over after expiry, and together they drain the
   board;
6. assert the merged result is **byte-identical** to the reference,
   every cell was worker-committed (the coordinator ran nothing),
   zero lease files leaked, the journal shows the orphaned cell was
   reclaimed by a survivor, and no worker processes are left behind;
7. write ``DISTRIB_STATS.json`` (claims/takeovers per worker, board
   arithmetic, journal event counts) for the CI artifact upload.

Exit status 0 on success, 1 with a message on any violated assertion.

Run:  PYTHONPATH=src python tools/distrib_smoke.py
      PYTHONPATH=src python tools/distrib_smoke.py --domains 20 --shards 4
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import signal
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    ResultStore,
    SerialExecutor,
    SweepManifest,
    collect_sweep,
    result_fingerprint,
    run_sharded_experiment,
    spawn_worker_process,
    standard_universe_factory,
    standard_workload,
    write_sweep_manifest,
)
from repro.resolver import correct_bind_config  # noqa: E402

STATS_PATH = REPO_ROOT / "DISTRIB_STATS.json"


def fail(message: str) -> None:
    print(f"FAIL {message}")
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--domains", type=int, default=12)
    parser.add_argument("--filler", type=int, default=150)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--ttl", type=float, default=0.5,
                        help="survivor lease TTL (short: fast takeover)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        parser.error("--shards must leave work for the survivors")

    began = time.perf_counter()

    # 1. Reference: the uninterrupted serial run.
    factory = standard_universe_factory(
        args.domains, filler_count=args.filler, workload_seed=args.seed
    )
    names = standard_workload(args.domains, seed=args.seed).names(
        args.domains
    )
    reference = run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=args.seed,
        shards=args.shards,
        executor=SerialExecutor(),
    )
    print(f"  ok reference run ({len(names)} names, {args.shards} shards)")

    # 2. The shared store + manifest.
    store_root = Path(tempfile.mkdtemp(prefix="distrib-smoke-")) / "store"
    store = ResultStore(store_root)
    manifest = SweepManifest(
        sizes=(args.domains,),
        filler_count=args.filler,
        seed=args.seed,
        shards=args.shards,
    )
    write_sweep_manifest(store, manifest)
    digests = [cell.key.digest() for cell in manifest.cells()]

    # 3. The doomed worker: SIGKILL right after its first claim.
    doomed = spawn_worker_process(
        store_root,
        "doomed",
        ttl=args.ttl,
        poll_interval=0.05,
        extra_args=["--die-after-claims", "1"],
    )
    doomed.wait(timeout=300)
    doomed.stdout.close()
    doomed.stderr.close()
    if doomed.returncode != -signal.SIGKILL:
        fail(f"doomed worker should die by SIGKILL, got rc={doomed.returncode}")
    print("  ok doomed worker SIGKILLed mid-cell (rc=-SIGKILL)")

    # 4. Exactly one orphaned, uncommitted lease.
    orphaned = [
        digest
        for digest in digests
        if store.lease_path_for(digest).exists()
    ]
    if len(orphaned) != 1:
        fail(f"expected 1 orphaned lease, found {len(orphaned)}")
    if store.path_for(orphaned[0]).exists():
        fail("the orphaned cell should be uncommitted")
    print(f"  ok one orphaned lease left behind ({orphaned[0][:12]}…)")

    # 5. Two survivors drain the board (takeover after TTL expiry).
    survivors = {
        worker_id: spawn_worker_process(
            store_root, worker_id, ttl=args.ttl, poll_interval=0.05
        )
        for worker_id in ("s1", "s2")
    }
    worker_exits = {"doomed": doomed.returncode}
    reports = {}
    for worker_id, process in survivors.items():
        process.wait(timeout=300)
        stdout = process.stdout.read()
        process.stdout.close()
        process.stderr.close()
        worker_exits[worker_id] = process.returncode
        if process.returncode != 0:
            fail(f"survivor {worker_id} exited {process.returncode}: {stdout}")
        reports[worker_id] = json.loads(stdout)
    print("  ok both survivors drained the board (exit 0)")

    # 6. The assertions that make this a smoke *test*.
    outcome = collect_sweep(store, run_missing=False)
    if outcome.quarantined:
        fail(f"quarantined cells: {outcome.quarantined}")
    if outcome.cells_reused != args.shards:
        fail(
            f"every cell should be worker-committed: "
            f"reused={outcome.cells_reused} of {args.shards}"
        )
    if result_fingerprint(outcome.result) != result_fingerprint(reference):
        fail("distributed sweep is NOT byte-identical to the reference")
    leaked = list(store_root.glob("*/*.lease")) + list(
        store_root.glob("*/*.lease.stale.*")
    )
    if leaked:
        fail(f"leaked lease files: {[str(p) for p in leaked]}")
    events = store.journal().events()
    orphan_claims = [
        event
        for event in events
        if event.get("event") == "claim" and event.get("cell") == orphaned[0]
    ]
    if not orphan_claims or orphan_claims[0].get("worker") != "doomed":
        fail("journal should record the doomed worker's claim first")
    if not any(
        event.get("worker") in ("s1", "s2") for event in orphan_claims[1:]
    ):
        fail("journal should record a survivor reclaiming the orphaned cell")
    commits = [
        event.get("cell") for event in events if event.get("event") == "commit"
    ]
    if len(commits) != len(set(commits)):
        fail("duplicate commit events: a fenced zombie wrote twice")
    for process in multiprocessing.active_children():
        process.join(timeout=5)
    if multiprocessing.active_children():
        fail("worker processes left behind")
    print(
        "  ok merged sweep byte-identical to reference "
        f"({outcome.cells_reused} worker-committed cells, takeover observed)"
    )

    # 7. The artifact.
    takeovers = sum(
        report["stats"]["takeovers"] for report in reports.values()
    )
    stats = {
        "domains": args.domains,
        "filler": args.filler,
        "shards": args.shards,
        "seed": args.seed,
        "ttl": args.ttl,
        "worker_exits": worker_exits,
        "workers": {
            worker_id: report["stats"] for worker_id, report in reports.items()
        },
        "survivor_takeovers": takeovers,
        "cells_total": outcome.cells_total,
        "cells_reused": outcome.cells_reused,
        "cells_rerun": outcome.cells_rerun,
        "quarantined": len(outcome.quarantined),
        "journal_events": len(events),
        "byte_identical": True,
        "elapsed_seconds": round(time.perf_counter() - began, 3),
    }
    STATS_PATH.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    print(f"  ok wrote {STATS_PATH.name}")
    print("distributed-sweep smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
