#!/usr/bin/env python
"""Docs CI: execute fenced ``python`` blocks and check markdown links.

Two checks keep the documentation honest:

1. **Snippet execution** — every fenced ``python`` block in the
   documented files runs for real.  Blocks within one file share a
   namespace (tutorials build state across sections), and each file
   starts fresh.  A failing block reports its file, fence line, and
   the exception.

2. **Link check** — every relative markdown link target in the
   repository's ``*.md`` files must exist on disk (anchors stripped;
   ``http(s)``/``mailto`` targets are not fetched).

Run:  python tools/check_docs.py            # both checks
      python tools/check_docs.py --links-only
      python tools/check_docs.py --snippets-only
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import traceback
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Files whose ``python`` blocks must execute.
SNIPPET_FILES = [
    "README.md",
    "docs/TUTORIAL.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/PERFORMANCE.md",
    "docs/ROBUSTNESS.md",
    "docs/SCALING.md",
    "EXPERIMENTS.md",
]

FENCE_RE = re.compile(r"^```(\w*)\s*$")
#: Inline markdown links; images share the syntax via the leading ``!``.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")


def extract_python_blocks(path: Path):
    """Yield ``(start_line, source)`` for each fenced python block."""
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    language = ""
    start = 0
    buffer = []
    for number, line in enumerate(lines, start=1):
        fence = FENCE_RE.match(line)
        if fence and not in_block:
            in_block = True
            language = fence.group(1).lower()
            start = number + 1
            buffer = []
        elif line.strip() == "```" and in_block:
            in_block = False
            if language == "python" and buffer:
                blocks.append((start, "\n".join(buffer)))
        elif in_block:
            buffer.append(line)
    return blocks


def run_snippets(files) -> int:
    failures = 0
    for relative in files:
        path = REPO_ROOT / relative
        if not path.exists():
            print(f"FAIL {relative}: file missing")
            failures += 1
            continue
        blocks = extract_python_blocks(path)
        if not blocks:
            print(f"  ok {relative}: no python blocks")
            continue
        namespace = {"__name__": "__docs__", "__file__": str(path)}
        for start, source in blocks:
            began = time.perf_counter()
            try:
                code = compile(source, f"{relative}:{start}", "exec")
                exec(code, namespace)
            except Exception:
                failures += 1
                print(f"FAIL {relative}:{start}")
                traceback.print_exc()
                break
            else:
                elapsed = time.perf_counter() - began
                print(f"  ok {relative}:{start} ({elapsed:.1f}s)")
    return failures


def check_links() -> int:
    failures = 0
    markdown_files = sorted(REPO_ROOT.glob("*.md")) + sorted(
        (REPO_ROOT / "docs").glob("*.md")
    )
    for path in markdown_files:
        text = path.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            resolved = (path.parent / bare).resolve()
            if not resolved.exists():
                failures += 1
                relative = path.relative_to(REPO_ROOT)
                print(f"FAIL {relative}: broken link -> {target}")
    if failures == 0:
        print(f"  ok links: {len(markdown_files)} markdown files checked")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--links-only", action="store_true")
    parser.add_argument("--snippets-only", action="store_true")
    parser.add_argument(
        "--files", nargs="*", default=SNIPPET_FILES,
        help="markdown files whose python blocks to execute",
    )
    args = parser.parse_args(argv)
    failures = 0
    if not args.links_only:
        failures += run_snippets(args.files)
    if not args.snippets_only:
        failures += check_links()
    if failures:
        print(f"{failures} documentation check(s) failed")
        return 1
    print("all documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
