"""Cross-validation: the Fig 12 analytic model vs the packet simulator.

Fig 12 evaluates TXT-signalling overhead on a 92.7M-query trace with an
analytic TTL-cache model (one cacheable signal fetch per zone).  This
bench replays a scaled Zipf stream through the *full* resolver/network
stack and checks that the measured TXT exchanges match the model's
prediction — grounding the large-scale number in the packet-level
implementation.
"""

import os

from conftest import emit

from repro.core import replay_zipf_stream, standard_workload


def test_trace_replay_validation(benchmark):
    queries = int(os.environ.get("REPRO_REPLAY_QUERIES", "1500"))
    workload = standard_workload(300)
    result = benchmark.pedantic(
        replay_zipf_stream,
        args=(workload, queries),
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig 12 model cross-validation (packet-level replay)\n"
        f"  queries replayed:        {result.queries_replayed}\n"
        f"  distinct zones touched:  {result.distinct_zones}\n"
        f"  TXT exchanges measured:  {result.measured_txt_exchanges} "
        f"({result.measured_txt_bytes} bytes)\n"
        f"  TXT exchanges predicted: {result.predicted_txt_exchanges} "
        f"(one per non-secure distinct zone per TTL window)\n"
        f"  model error:             {result.prediction_error:.1%}"
    )
    assert result.prediction_error <= 0.05
    assert result.measured_txt_exchanges < result.queries_replayed