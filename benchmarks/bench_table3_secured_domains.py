"""Table 3 + Section 5.2: DNSSEC-secured domains per configuration.

Paper: apt-get No, apt-get(ARM-edited) Yes, yum No, manual Yes — and
under the correct configuration exactly the 5 islands of security are
sent to (and served by) the registry.
"""

from conftest import emit

from repro.analysis import table3_secured_domains


def test_table3_secured_domains(benchmark):
    rows, text = benchmark.pedantic(
        table3_secured_domains, kwargs={"filler_count": 2000}, rounds=1, iterations=1
    )
    emit(text)
    verdicts = {r["config"]: r["leaks"] for r in rows}
    assert verdicts == {
        "apt-get": False,
        "apt-get+ARM-edit": True,
        "yum": False,
        "manual": True,
    }
    yum = next(r for r in rows if r["config"] == "yum")
    assert yum["islands_via_dlv"] == 5
