"""Section 7.3: NSEC vs NSEC3 vs NSEC5 denial at the registry.

Paper: NSEC3 and NSEC5 forbid aggressive negative caching, so a
hashed-denial DLV zone would leak *every* query — the
performance/privacy trade-off inherent in DLV's design (they protect
the zone's contents from enumeration instead; see
bench_zone_enumeration.py).
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config
from repro.servers import DenialMode


def run_tradeoff(size, filler_count):
    workload = standard_workload(size)
    rows = []
    for denial in (DenialMode.NSEC, DenialMode.NSEC3, DenialMode.NSEC5):
        universe = standard_universe(
            workload, filler_count=filler_count, registry_denial=denial
        )
        experiment = LeakageExperiment(universe, correct_bind_config())
        result = experiment.run(workload.names(size))
        rows.append(
            {
                "denial": denial.value,
                "dlv_queries": result.leakage.dlv_queries,
                "leaked": result.leakage.leaked_count,
                "proportion": result.leakage.leaked_proportion,
                "aggressive_hits": experiment.resolver.negcache.aggressive_hits,
            }
        )
    return rows


def test_nsec3_tradeoff(benchmark):
    size = int(os.environ.get("REPRO_NSEC3_SIZE", "400"))
    rows = benchmark.pedantic(
        run_tradeoff, args=(size, 20000), rounds=1, iterations=1
    )
    text = format_table(
        ["Denial", "DLV queries", "Leaked domains", "Proportion", "Aggressive-cache hits"],
        [
            (r["denial"], r["dlv_queries"], r["leaked"], f"{r['proportion']:.1%}", r["aggressive_hits"])
            for r in rows
        ],
        title=f"Section 7.3: NSEC vs NSEC3 registry denial ({size} domains)",
    )
    emit(text)
    nsec, nsec3, nsec5 = rows
    assert nsec3["leaked"] > nsec["leaked"]
    assert nsec3["aggressive_hits"] == 0
    assert nsec["aggressive_hits"] > 0
    # NSEC5 trades exactly like NSEC3 from the resolver's viewpoint.
    assert nsec5["leaked"] == nsec3["leaked"]
    assert nsec5["aggressive_hits"] == 0
