"""Adversary matrix: byzantine personas × hardening policies.

Sweeps the four adversary personas (Kaminsky spoofer, on-path glue/DS
poisoner, NXNS referral bomber in both fanout and loop mode, KeyTrap
signature bomber) against the resolver with hardening on and off, and
reports per cell:

* poisoning — attacker-recognised RRsets that survived into the cache;
* amplification — resolver upstream sends relative to the same
  policy's no-adversary baseline cell;
* crypto — signature verification attempts actually performed;
* the hardening counters that explain *where* each attack died.

The acceptance contrasts this bench asserts are the PR's point: a
hardened resolver caches **zero** poisoned entries and keeps both
amplification and crypto work inside its configured budgets, while the
unhardened control demonstrably poisons and amplifies — and the
no-adversary control cell shows the paper's Case-2 leakage unchanged,
so the defences cost honest traffic nothing.
"""

import dataclasses

from conftest import emit

from repro.analysis import format_table
from repro.core import (
    deploy_poisoner,
    deploy_referral_bomber,
    deploy_sig_bomber,
    deploy_spoofer,
    run_adversary_matrix,
    standard_universe,
    standard_workload,
)
from repro.dnscore import Name
from repro.resolver import ResolverConfig

#: Kept deliberately small: the matrix builds a fresh universe per cell,
#: and the unhardened bomber cells are (by design) expensive.
DOMAIN_COUNT = 12
FILLER_COUNT = 200

VICTIMS = (
    Name.from_text("victim-bank.example."),
    Name.from_text("victim-mail.example."),
)


def run_matrix():
    workload = standard_workload(DOMAIN_COUNT, seed=3)
    names = [spec.name for spec in workload.domains]

    def factory():
        return standard_universe(workload, filler_count=FILLER_COUNT)

    adversaries = {
        "spoofer": lambda u: deploy_spoofer(u, seed=7),
        "poisoner": lambda u: deploy_poisoner(u, VICTIMS, seed=7),
        "referral-fanout": lambda u: deploy_referral_bomber(
            u, mode="fanout", seed=7
        ),
        "referral-loop": lambda u: deploy_referral_bomber(u, mode="loop", seed=7),
        "sig-bomber": lambda u: deploy_sig_bomber(u, seed=7),
    }
    hardened = ResolverConfig()
    configs = {
        "hardened": hardened,
        "unhardened": dataclasses.replace(
            hardened, hardening=hardened.hardening.off()
        ),
    }
    return run_adversary_matrix(factory, names, adversaries, configs)


def test_adversary_matrix(benchmark):
    reports = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    text = format_table(
        [
            "Adversary",
            "Policy",
            "Poisoned",
            "Amplif.",
            "Sends",
            "Crypto",
            "SERVFAIL",
            "Defences",
        ],
        [
            (
                r.adversary,
                r.policy,
                r.poisoned_cache_entries,
                f"{r.amplification:.1f}x",
                r.upstream_sends,
                r.crypto_verify_calls,
                f"{r.servfail_rate:.0%}",
                r.hardening.describe(),
            )
            for r in reports
        ],
        title="Adversary matrix: byzantine personas × hardening "
        f"({DOMAIN_COUNT} domains)",
    )
    emit(text)
    cells = {(r.adversary, r.policy): r for r in reports}
    hardened_cfg = ResolverConfig().hardening

    # Control cells: without an adversary the two policies are
    # indistinguishable — same availability, same upstream traffic,
    # same Case-2 leakage.  Hardening is free for honest traffic.
    control_h = cells[("none", "hardened")]
    control_u = cells[("none", "unhardened")]
    assert control_h.servfail == control_u.servfail == 0
    assert control_h.upstream_sends == control_u.upstream_sends
    assert control_h.case2_queries == control_u.case2_queries
    assert control_h.hardening.total_rejections == 0
    assert control_h.hardening.budget_denials == 0

    # Cache-poisoning personas: hardened caches stay clean, the
    # unhardened control demonstrably poisons.
    for adversary in ("spoofer", "poisoner"):
        assert cells[(adversary, "hardened")].poisoned_cache_entries == 0
        assert cells[(adversary, "unhardened")].poisoned_cache_entries > 0
    assert cells[("spoofer", "hardened")].hardening.spoofs_rejected > 0
    assert cells[("poisoner", "hardened")].hardening.records_scrubbed > 0

    # Amplification personas: the unhardened resolver is driven well
    # past its baseline traffic; the hardened one stays within budget
    # (fanout: the NS-address cap bites; loop: the upward referral is
    # rejected outright, so the loop never even starts).
    for adversary in ("referral-fanout", "referral-loop"):
        assert cells[(adversary, "unhardened")].amplification > 3.0
        assert (
            cells[(adversary, "hardened")].upstream_sends
            < cells[(adversary, "unhardened")].upstream_sends
        )
    fanout_h = cells[("referral-fanout", "hardened")]
    sends_per_domain = fanout_h.upstream_sends / DOMAIN_COUNT
    assert sends_per_domain <= hardened_cfg.max_upstream_sends
    assert fanout_h.hardening.ns_budget_exhausted > 0
    assert cells[("referral-loop", "hardened")].hardening.referrals_rejected > 0

    # KeyTrap: tag-colliding forged keys force quadratic verification
    # work on the unhardened validator; the signature budget caps it.
    sig_h = cells[("sig-bomber", "hardened")]
    sig_u = cells[("sig-bomber", "unhardened")]
    assert sig_u.crypto_verify_calls > 10 * control_u.crypto_verify_calls
    assert sig_h.crypto_verify_calls < sig_u.crypto_verify_calls / 4
    assert sig_h.hardening.signature_budget_exhausted > 0
    # Per-resolution crypto stays inside the configured budget.
    assert (
        sig_h.crypto_verify_calls
        <= hardened_cfg.max_signature_validations * DOMAIN_COUNT
    )
