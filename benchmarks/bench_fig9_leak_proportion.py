"""Fig 9: proportion of leaked domains vs N (decays, log-x).

Paper: ~84 % at 100 domains, decaying to ~6.8 % at 1M.
"""

from conftest import emit

from repro.analysis import fig9_leak_proportion


def test_fig9_leak_proportion(benchmark, sweep_points):
    rows, text = benchmark.pedantic(
        fig9_leak_proportion, args=(sweep_points,), rounds=1, iterations=1
    )
    emit(text)
    proportions = [row["proportion"] for row in rows]
    assert proportions[0] > proportions[-1]
    assert 0.70 <= proportions[0] <= 0.95  # paper: 84 % at N=100
