"""Fig 10: baseline / overhead / total per metric (Table 5, visually).

Paper: response time is the largest overhead component relative to its
baseline; traffic is the smallest.
"""

import os

from conftest import emit

from repro.analysis import fig10_overhead_breakdown, table5_txt_overhead


def test_fig10_overhead_breakdown(benchmark):
    sizes = tuple(
        int(part)
        for part in os.environ.get("REPRO_TABLE5_SIZES", "100,1000").split(",")
    )
    rows5, _ = table5_txt_overhead(sizes=sizes, filler_count=20000)
    rows, text = benchmark.pedantic(
        fig10_overhead_breakdown, args=(rows5,), rounds=1, iterations=1
    )
    emit(text)
    for row in rows:
        # Paper: latency is the largest relative overhead component.
        assert row["time_ratio"] >= row["traffic_ratio"]
