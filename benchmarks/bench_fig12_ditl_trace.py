"""Fig 12: large-scale trace-driven experiment (DITL).

Paper: 92.7M queries over 7 h (160-360k qpm); TXT signalling adds
~1.2 GB cumulative overhead (~0.38 Mbps) — small next to the baseline.
"""

import os

from conftest import emit

from repro.analysis import fig12_ditl


def test_fig12_ditl_trace(benchmark):
    scale = float(os.environ.get("REPRO_DITL_SCALE", "0.02"))
    summary, text = benchmark.pedantic(
        fig12_ditl, kwargs={"scale": scale}, rounds=1, iterations=1
    )
    emit(text)
    assert summary["minutes"] == 420
    assert 85_000_000 <= summary["total_queries_rescaled"] <= 100_000_000
    assert 160_000 <= summary["rate_min_qpm"]
    assert summary["rate_max_qpm"] <= 360_000
    assert 0.4 <= summary["overhead_gb_rescaled"] <= 2.5
    assert summary["overhead_gb_rescaled"] * 1e9 < summary["baseline_gb_rescaled"] * 1e9
