"""Hot-path bench: cached vs uncached, byte-identical by construction.

The optimization pass (crypto memoization, name interning, wire caches)
promises one thing above all else: **results never change**.  This
bench runs the same fig8-style cell — build a standard universe, resolve
the top-``DOMAINS`` workload through a correct BIND configuration —
``REPS`` times per arm, first with every hot-path cache forcibly
disabled (``repro.perf``), then with them enabled from a cold start, and
records in ``BENCH_hotpath.json``:

* per-stage wall clock (``setup`` = universe build, ``resolve`` = the
  experiment loop, with ``validate``/``lookaside`` sub-stage time
  accumulated inside it by instrumenting the validator and the DLV
  searcher);
* cache hit rates — physical rates from ``perf.hotpath_cache_stats()``
  and the logical ``validator.verify_memo_*`` counters from a separate
  metrics-attached run;
* ``byte_identical``: every rep of every arm must produce the same
  ``result_fingerprint``.

Repetition is the point, not padding: sweeps, adversary matrices and
sharded sweeps all rebuild near-identical cells, which is exactly where
the keygen/sign/verify memos amortize.  Within a single cell every
RRSIG input is distinct (the resolver's own DNSKEY/DS caching already
dedupes), so a one-rep bench would understate the caches and a hit-rate
of zero there is expected, not a bug.

Assertions: byte-identity and the resolve-phase speedup floor fire on
every workload size (CI runs a small one via the ``REPRO_BENCH_*``
variables); the ≥2x end-to-end floor fires only at the full default
size, where the constant overheads are properly amortized.
"""

import gc
import json
import os
import statistics
import time
from pathlib import Path

from repro import perf
from repro.core import (
    LeakageExperiment,
    MetricsRegistry,
    result_fingerprint,
    standard_universe,
    standard_workload,
)
from repro.resolver import correct_bind_config
from repro.resolver.lookaside import DlvLookaside
from repro.resolver.validator import Validator

DOMAINS = int(os.environ.get("REPRO_BENCH_DOMAINS", "150"))
FILLER = int(os.environ.get("REPRO_BENCH_FILLER", "1000"))
REPS = int(os.environ.get("REPRO_BENCH_REPS", "6"))
SEED = 2016

#: Floors.  Resolve-phase is asserted always: the verify memo alone
#: removes every repeated modexp from warm reps.  End-to-end only at
#: full size — tiny workloads are dominated by constant costs.
MIN_RESOLVE_SPEEDUP = 1.5
MIN_END_TO_END_SPEEDUP = 2.0
FULL_SIZE = DOMAINS >= 150 and REPS >= 6

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"


def _instrument(stage):
    """Accumulate validator / look-aside wall clock into *stage*,
    returning an undo callable.  Instrumenting the class keeps the bench
    out of the library's hot path proper."""
    real_validate = Validator.validate_outcome
    real_lookaside = DlvLookaside.try_lookaside

    def timed_validate(self, outcome):
        start = time.perf_counter()
        try:
            return real_validate(self, outcome)
        finally:
            stage["validate"] += time.perf_counter() - start

    def timed_lookaside(self, zone):
        start = time.perf_counter()
        try:
            return real_lookaside(self, zone)
        finally:
            stage["lookaside"] += time.perf_counter() - start

    Validator.validate_outcome = timed_validate
    DlvLookaside.try_lookaside = timed_lookaside

    def undo():
        Validator.validate_outcome = real_validate
        DlvLookaside.try_lookaside = real_lookaside

    return undo


def _run_cell(metrics=None):
    """One fig8-style cell: fresh universe, resolve the workload."""
    workload = standard_workload(DOMAINS, seed=SEED)
    universe = standard_universe(workload, filler_count=FILLER)
    experiment = LeakageExperiment(
        universe, correct_bind_config(), metrics=metrics
    )
    return experiment.run(workload.names(DOMAINS))


def _run_arm(enabled):
    """REPS cells with caches on/off, from a cold cache either way.

    Per-rep setup/resolve times are recorded individually so speedups
    can be computed over medians — a stray GC pause or scheduler blip in
    one rep must not decide an assertion."""
    perf.set_caches_enabled(enabled)
    perf.clear_hotpath_caches()
    stage = {"validate": 0.0, "lookaside": 0.0}
    setup_times, resolve_times = [], []
    undo = _instrument(stage)
    fingerprints = []
    try:
        for _ in range(REPS):
            # Collect between reps (outside the timed windows) so a
            # stray gen-2 pass doesn't land inside one rep's numbers.
            gc.collect()
            rep_start = time.perf_counter()
            workload = standard_workload(DOMAINS, seed=SEED)
            universe = standard_universe(workload, filler_count=FILLER)
            experiment = LeakageExperiment(universe, correct_bind_config())
            setup_times.append(time.perf_counter() - rep_start)
            resolve_start = time.perf_counter()
            result = experiment.run(workload.names(DOMAINS))
            resolve_times.append(time.perf_counter() - resolve_start)
            fingerprints.append(result_fingerprint(result))
    finally:
        undo()
    stage["setup"] = sum(setup_times)
    stage["resolve"] = sum(resolve_times)
    total = stage["setup"] + stage["resolve"]
    return total, stage, setup_times, resolve_times, fingerprints


def _hit_rates():
    """Physical cache stats, with a derived rate where meaningful."""
    rates = {}
    for name, stats in perf.hotpath_cache_stats().items():
        entry = dict(stats)
        lookups = entry.get("hits", 0) + entry.get("misses", 0)
        if lookups:
            entry["hit_rate"] = round(entry["hits"] / lookups, 4)
        rates[name] = entry
    return rates


def test_hotpath_speedup():
    # Uncached reference first, then the cached arm from cold.
    (
        uncached_total,
        uncached_stage,
        uncached_setup,
        uncached_resolve,
        uncached_prints,
    ) = _run_arm(enabled=False)
    (
        cached_total,
        cached_stage,
        cached_setup,
        cached_resolve,
        cached_prints,
    ) = _run_arm(enabled=True)
    cache_stats = _hit_rates()

    reference = uncached_prints[0]
    byte_identical = all(
        fp == reference for fp in uncached_prints + cached_prints
    )
    assert byte_identical, (
        "hot-path caches changed a result fingerprint — the one thing "
        "they must never do"
    )

    # Logical memo counters, from a separate metrics-attached cached run
    # (metrics snapshots are part of the fingerprint, so the timed arms
    # above run without a registry).
    metrics = MetricsRegistry()
    _run_cell(metrics=metrics)
    counters = metrics.snapshot()["counters"]
    memo_counters = {
        name: value
        for name, value in counters.items()
        if name
        in (
            "validator.verify_memo_hits",
            "validator.verify_memo_misses",
            "validator.crypto_verify_calls",
            "validator.signature_checks",
        )
    }

    end_to_end = uncached_total / cached_total
    # Steady-state resolve speedup: medians, with the cached arm's cold
    # first rep excluded when there are warm reps to measure — the
    # caches promise nothing about their own fill cost.
    cached_warm = cached_resolve[1:] if len(cached_resolve) > 1 else cached_resolve
    resolve_speedup = statistics.median(uncached_resolve) / statistics.median(
        cached_warm
    )

    payload = {
        "workload": {
            "domains": DOMAINS,
            "filler": FILLER,
            "reps": REPS,
            "seed": SEED,
        },
        "uncached": {
            "total_seconds": round(uncached_total, 4),
            "stages": {k: round(v, 4) for k, v in uncached_stage.items()},
            "setup_per_rep": [round(t, 4) for t in uncached_setup],
            "resolve_per_rep": [round(t, 4) for t in uncached_resolve],
        },
        "cached": {
            "total_seconds": round(cached_total, 4),
            "stages": {k: round(v, 4) for k, v in cached_stage.items()},
            "setup_per_rep": [round(t, 4) for t in cached_setup],
            "resolve_per_rep": [round(t, 4) for t in cached_resolve],
        },
        "speedup": {
            "end_to_end": round(end_to_end, 4),
            # median uncached rep over median warm cached rep
            "resolve_phase": round(resolve_speedup, 4),
            "setup_phase": round(
                uncached_stage["setup"] / cached_stage["setup"], 4
            ),
        },
        "cache_stats": cache_stats,
        "memo_counters": memo_counters,
        "byte_identical": byte_identical,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"workload: {DOMAINS} domains / {FILLER} filler x {REPS} reps")
    for label, total, stage in (
        ("uncached", uncached_total, uncached_stage),
        ("cached  ", cached_total, cached_stage),
    ):
        print(
            f"{label}  {total:.3f}s  (setup {stage['setup']:.3f}s, "
            f"resolve {stage['resolve']:.3f}s of which validate "
            f"{stage['validate']:.3f}s, lookaside {stage['lookaside']:.3f}s)"
        )
    print(
        f"speedup   end-to-end {end_to_end:.2f}x, "
        f"resolve {resolve_speedup:.2f}x"
    )
    print(f"byte identical: {byte_identical}")
    print(f"written to {RESULT_PATH.name}")

    assert resolve_speedup >= MIN_RESOLVE_SPEEDUP, (
        f"resolve-phase speedup {resolve_speedup:.2f}x below "
        f"{MIN_RESOLVE_SPEEDUP}x"
    )
    if FULL_SIZE:
        assert end_to_end >= MIN_END_TO_END_SPEEDUP, (
            f"end-to-end speedup {end_to_end:.2f}x below "
            f"{MIN_END_TO_END_SPEEDUP}x at full size"
        )
    else:
        print(
            f"end-to-end floor skipped: workload below full size "
            f"({DOMAINS} domains, {REPS} reps)"
        )
