"""Ablation: aggressive negative caching (RFC 5074) on vs off.

The paper attributes the Fig 9 decay entirely to aggressive NSEC
caching.  This ablation removes the mechanism from the resolver and
shows leakage snapping to ~100 % of non-secure domains — the design
choice the registry's privacy exposure hinges on.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config


def run_ablation(size, filler_count):
    workload = standard_workload(size)
    rows = []
    for label, aggressive in (("with aggressive caching", True), ("without", False)):
        universe = standard_universe(workload, filler_count=filler_count)
        config = correct_bind_config(aggressive_nsec_caching=aggressive)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(workload.names(size))
        rows.append(
            {
                "mode": label,
                "leaked": result.leakage.leaked_count,
                "proportion": result.leakage.leaked_proportion,
                "dlv_queries": result.leakage.dlv_queries,
                "nsec_ranges": experiment.resolver.negcache.nsec_range_count(),
            }
        )
    return rows


def test_ablation_negative_caching(benchmark):
    size = int(os.environ.get("REPRO_ABLATION_SIZE", "400"))
    rows = benchmark.pedantic(
        run_ablation, args=(size, 20000), rounds=1, iterations=1
    )
    text = format_table(
        ["Mode", "Leaked", "Proportion", "DLV queries", "Cached NSEC ranges"],
        [
            (r["mode"], r["leaked"], f"{r['proportion']:.1%}", r["dlv_queries"], r["nsec_ranges"])
            for r in rows
        ],
        title=f"Ablation: RFC 5074 aggressive negative caching ({size} domains)",
    )
    emit(text)
    with_cache, without = rows
    assert without["leaked"] > with_cache["leaked"]
    assert without["proportion"] > 0.9
