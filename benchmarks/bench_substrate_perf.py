"""Substrate micro-benchmarks: how fast is the simulator itself?

Unlike the table/figure benches (single-shot experiment regenerations),
these time the hot primitives with proper statistics — useful when
tuning the simulator or scaling sweeps toward the paper's top-1M runs.
"""

import random

import pytest

from repro.crypto import KeyPool, generate_keypair
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.dnscore import Message, Name, RRType, decode_message, encode_message
from repro.resolver import correct_bind_config
from repro.zones import ZoneBuilder, standard_ns_hosts


def n(text):
    return Name.from_text(text)


@pytest.fixture(scope="module")
def signed_zone():
    pool = KeyPool(seed=161, pool_size=8, modulus_bits=256)
    builder = ZoneBuilder(n("perf.test"))
    builder.with_ns(standard_ns_hosts(n("perf.test"), ["10.5.0.1"]))
    for index in range(200):
        from repro.dnscore import A

        builder.with_rrset(
            Name([f"host{index}", "perf", "test"]),
            RRType.A,
            [A(f"10.5.{index // 250}.{index % 250 + 1}")],
        )
    return builder.signed(pool.keys_for_zone(n("perf.test")))


@pytest.fixture(scope="module")
def sample_wire():
    query = Message.make_query(1, n("www.example.com"), RRType.A, dnssec_ok=True)
    return encode_message(query)


def test_perf_wire_encode(benchmark):
    message = Message.make_query(1, n("www.example.com"), RRType.A, dnssec_ok=True)
    benchmark(encode_message, message)


def test_perf_wire_decode(benchmark, sample_wire):
    benchmark(decode_message, sample_wire)


def test_perf_rsa_sign(benchmark):
    keypair = generate_keypair(random.Random(5), 256)
    benchmark(keypair.sign, b"benchmark payload")


def test_perf_rsa_verify(benchmark):
    keypair = generate_keypair(random.Random(5), 256)
    signature = keypair.sign(b"benchmark payload")
    benchmark(keypair.public_key.verify, b"benchmark payload", signature)


def test_perf_zone_lookup_hit(benchmark, signed_zone):
    benchmark(signed_zone.lookup, n("host7.perf.test"), RRType.A, True)


def test_perf_zone_lookup_nxdomain(benchmark, signed_zone):
    benchmark(signed_zone.lookup, n("nope.perf.test"), RRType.A, True)


def test_perf_full_resolution(benchmark):
    """End-to-end resolutions per second, warm caches for the chain."""
    workload = standard_workload(300)
    universe = standard_universe(workload, filler_count=2000)
    experiment = LeakageExperiment(
        universe, correct_bind_config(), ptr_fraction=0.0
    )
    names = iter(workload.names(300))

    def resolve_next():
        experiment.resolver.resolve(next(names), RRType.A)

    benchmark.pedantic(resolve_next, rounds=250, iterations=1)
