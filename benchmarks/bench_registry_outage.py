"""Section 8.4: DLV registry outages break off-path validation.

Paper: "it is argued that a DLV server should be continuously running
in order for the DLV to serve its intended purpose.  However, this is
not always guaranteed, given several reported outages."  The bench
measures what an outage costs: island-of-security domains lose their
AD bit while everything else resolves normally.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, schedule_outage
from repro.dnscore import RCode
from repro.resolver import correct_bind_config
from repro.workloads import Universe, UniverseParams, secured_domains


def run_outage():
    specs = secured_domains()
    rows = []
    for label, outage in (("registry up", False), ("registry outage", True)):
        universe = Universe(specs, UniverseParams(modulus_bits=256))
        if outage:
            # Scripted on the fault plan: the registry host answers
            # SERVFAIL for the whole run, no server swap needed.
            schedule_outage(
                universe.network,
                universe.registry_address,
                rcode=RCode.SERVFAIL,
            )
        experiment = LeakageExperiment(
            universe, correct_bind_config(), ptr_fraction=0.0
        )
        result = experiment.run([s.name for s in specs])
        rows.append(
            {
                "condition": label,
                "authenticated": result.authenticated_answers,
                "servfail": result.rcode_counts.get("SERVFAIL", 0),
                "noerror": result.rcode_counts.get("NOERROR", 0),
            }
        )
    return rows


def test_registry_outage(benchmark):
    rows = benchmark.pedantic(run_outage, rounds=1, iterations=1)
    text = format_table(
        ["Condition", "AD answers (of 45)", "SERVFAIL", "NOERROR"],
        [
            (r["condition"], r["authenticated"], r["servfail"], r["noerror"])
            for r in rows
        ],
        title="Section 8.4: registry outage vs the secured-45 set "
        "(5 islands depend on DLV)",
    )
    emit(text)
    up, down = rows
    assert up["authenticated"] == 45
    assert down["authenticated"] == 40  # islands lose validation
    assert down["noerror"] == 45  # resolution itself survives
