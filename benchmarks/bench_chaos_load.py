"""Chaos-under-load bench: availability vs load during a DLV outage.

The serial chaos matrix measures a registry outage one stub query at a
time; this bench replays the same outage while 4/16/64 concurrent users
share the resolver, and records what only load can show — recorded in
``BENCH_chaos_load.json``:

* **servfail mode** — the registry answers SERVFAIL throughout
  ``[FAULT_START, FAULT_END)`` and the resolver runs the strict
  ``DlvOutagePolicy.SERVFAIL`` policy.  The during-fault SERVFAIL rate
  *falls* as load rises: a busier shared cache warms faster, so fewer
  cold resolutions need the registry while it is down.  The same
  mechanism moves the leak-rate curve — which is the paper's Case-2
  exposure, now as a function of concurrency.
* **blackhole mode** — the registry black-holes (queries vanish) and
  the resolver serves stale.  Availability holds, but the during-fault
  windows surface the cost: upstream retry storms, p99 session latency
  inflation (seconds of backoff instead of milliseconds), and
  served-stale answers once registry entries pass their TTL inside the
  outage.

Every load level replays the *same simulated timespan* over the *same
fixed outage window* (``ReplayLoad.query_budget`` scales the query
budget as users × qps × duration), so the curves are comparable: one
fault, three populations.

Environment overrides for CI smoke runs:
``REPRO_BENCH_CHAOS_USERS`` (comma list, default ``4,16,64``),
``REPRO_BENCH_CHAOS_DURATION`` (default 7200 simulated s),
``REPRO_BENCH_CHAOS_DOMAINS`` / ``_FILLER`` (default 120 / 400).
"""

import dataclasses
import json
import os
from pathlib import Path

from repro.core import (
    ReplayLoad,
    registry_outage_scenario,
    run_chaos_replay,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RCode
from repro.resolver import DlvOutagePolicy, correct_bind_config

USERS_SWEEP = tuple(
    int(part)
    for part in os.environ.get("REPRO_BENCH_CHAOS_USERS", "4,16,64").split(",")
)
DURATION = float(os.environ.get("REPRO_BENCH_CHAOS_DURATION", "7200"))
DOMAINS = int(os.environ.get("REPRO_BENCH_CHAOS_DOMAINS", "120"))
FILLER = int(os.environ.get("REPRO_BENCH_CHAOS_FILLER", "400"))
PER_USER_QPS = 0.05
WINDOW_SECONDS = 600.0
#: The scripted outage span: starts after the cold ramp, ends with
#: enough replay left to watch the recovery.
FAULT_START = 900.0
FAULT_END = min(DURATION - 600.0, DURATION * 11 / 12)
SEED = 2017

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos_load.json"

MODES = {
    # (outage rcode, resolver config)
    "servfail": (
        RCode.SERVFAIL,
        correct_bind_config(dlv_outage_policy=DlvOutagePolicy.SERVFAIL),
    ),
    "blackhole": (
        None,
        dataclasses.replace(correct_bind_config(), serve_stale=True),
    ),
}


def _phase_payload(window) -> dict:
    return {
        "queries": window.queries,
        "failures": window.failures,
        "servfail_rate": round(window.servfail_rate, 5),
        "timeout_rate": round(window.timeout_rate, 5),
        "leak_rate": round(window.leak_rate, 5),
        "case2_queries": window.case2_queries,
        "leaked_domains": len(window.leaked_domains),
        "retries": window.retries,
        "stale_served": window.stale_served,
        "admission_queued": window.admission_queued,
        "admission_rejected": window.admission_rejected,
        "latency_p50": window.latency_p50,
        "latency_p99": window.latency_p99,
        "cache_hit_rate": round(window.cache_hit_rate, 5),
    }


def _run_cell(mode: str, users: int):
    rcode, config = MODES[mode]
    workload = standard_workload(DOMAINS, seed=2016)
    universe = standard_universe(workload, filler_count=FILLER, seed=2016)
    names = [spec.name for spec in workload.domains]
    load = ReplayLoad(
        users=users,
        per_user_qps=PER_USER_QPS,
        duration_seconds=DURATION,
        window_seconds=WINDOW_SECONDS,
        max_concurrent=min(users, 64),
        seed=SEED,
    )
    return run_chaos_replay(
        universe,
        config,
        names,
        scenario=registry_outage_scenario(
            rcode=rcode, start=FAULT_START, end=FAULT_END
        ),
        scenario_label=f"registry-{mode}",
        policy_label=mode,
        load=load,
    )


def test_chaos_load():
    assert len(USERS_SWEEP) >= 3, "availability curves need >= 3 load levels"
    curves = {}
    for mode in MODES:
        curves[mode] = {}
        for users in USERS_SWEEP:
            result = _run_cell(mode, users)
            overall = result.overall
            assert overall.queries == result.load.query_budget()
            assert result.fault_bounds == (FAULT_START, FAULT_END)
            curves[mode][users] = {
                "load": {
                    "users": users,
                    "per_user_qps": PER_USER_QPS,
                    "queries": result.load.query_budget(),
                },
                "overall": _phase_payload(overall),
                "before_fault": _phase_payload(result.before_fault()),
                "during_fault": _phase_payload(result.during_fault()),
                "after_fault": _phase_payload(result.after_fault()),
                "peak_in_flight": result.scheduler.peak_active,
                "wall_seconds": round(result.wall_seconds, 3),
            }

    payload = {
        "fault_window": [FAULT_START, FAULT_END],
        "duration_seconds": DURATION,
        "domains": DOMAINS,
        "registry_filler": FILLER,
        "modes": {
            mode: {str(users): curves[mode][users] for users in USERS_SWEEP}
            for mode in MODES
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"fault window [{FAULT_START:g}, {FAULT_END:g}) over {DURATION:g}s")
    header = (
        f"{'mode':>10} {'users':>6} {'during_sf':>10} {'during_to':>10} "
        f"{'leak':>7} {'retries':>8} {'stale':>6} {'p99':>6}"
    )
    print(header)
    for mode in MODES:
        for users in USERS_SWEEP:
            during = curves[mode][users]["during_fault"]
            print(
                f"{mode:>10} {users:>6} {during['servfail_rate']:>10.3f} "
                f"{during['timeout_rate']:>10.4f} {during['leak_rate']:>7.3f} "
                f"{during['retries']:>8} {during['stale_served']:>6} "
                f"{during['latency_p99']:>6.2f}"
            )
    print(f"written to {RESULT_PATH.name}")

    smallest = USERS_SWEEP[0]
    strict = curves["servfail"][smallest]
    # The strict policy fails what it cannot validate: the outage window
    # must show stub-visible SERVFAILs that the recovery does not.
    assert strict["during_fault"]["servfail_rate"] > 0.0
    assert (
        strict["during_fault"]["servfail_rate"]
        >= strict["after_fault"]["servfail_rate"]
    )
    # The black-holed registry triggers retry storms in the fault span.
    blackhole = curves["blackhole"][smallest]
    assert blackhole["during_fault"]["retries"] > 0
    assert blackhole["during_fault"]["retries"] >= (
        blackhole["before_fault"]["retries"]
    )
    # Availability (non-SERVFAIL answers) survives serve-stale mode.
    assert blackhole["overall"]["servfail_rate"] < 0.05
