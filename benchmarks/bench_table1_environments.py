"""Table 1: resolver versions and settings across the 16 environments."""

from conftest import emit

from repro.analysis import table1_environments


def test_table1_environments(benchmark):
    rows, text = benchmark.pedantic(
        table1_environments, rounds=1, iterations=1
    )
    emit(text)
    assert len(rows) == 8
