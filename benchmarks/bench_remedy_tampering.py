"""Section 6.2.3 "Attacks": tampering with the signalling remedies.

Paper: the TXT and Z-bit fixes are vulnerable to zone poisoning and
man-in-the-middle rewriting; signing the response lets the resolver
check the signal.  The bench measures leakage under each condition.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import (
    LeakageExperiment,
    interpose_tampering,
    standard_universe,
    standard_workload,
)
from repro.resolver import correct_bind_config


def run_conditions(size, filler_count):
    workload = standard_workload(size)
    names = workload.names(size)
    rows = []

    def run(label, universe_overrides, config_overrides, tamper):
        universe = standard_universe(
            workload, filler_count=filler_count, **universe_overrides
        )
        if tamper is not None:
            for address in universe._provider_addresses:
                interpose_tampering(universe.network, address, **tamper)
        config = correct_bind_config(**config_overrides)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(names)
        rows.append(
            {
                "condition": label,
                "leaked": result.leakage.leaked_count,
                "dlv_queries": result.leakage.dlv_queries,
            }
        )

    run("no remedy (baseline)", {}, {}, None)
    run("zbit remedy", {"deploy_zbit_signal": True}, {"zbit_signaling": True}, None)
    run(
        "zbit remedy + MITM forcing Z=1",
        {"deploy_zbit_signal": True},
        {"zbit_signaling": True},
        {"force_z_bit": True},
    )
    run("txt remedy", {"deploy_txt_signal": True}, {"txt_signaling": True}, None)
    run(
        "txt remedy + MITM rewriting dlv=1",
        {"deploy_txt_signal": True},
        {"txt_signaling": True},
        {"rewrite_txt_signal": 1},
    )
    run(
        "hardened txt + same MITM",
        {"deploy_txt_signal": True},
        {"txt_signaling": True, "validate_txt_signal": True},
        {"rewrite_txt_signal": 1},
    )
    return rows


def test_remedy_tampering(benchmark):
    size = int(os.environ.get("REPRO_TAMPER_SIZE", "150"))
    rows = benchmark.pedantic(
        run_conditions, args=(size, 10000), rounds=1, iterations=1
    )
    text = format_table(
        ["Condition", "Leaked domains", "DLV queries"],
        [(r["condition"], r["leaked"], r["dlv_queries"]) for r in rows],
        title=f"Section 6.2.3: remedy tampering ({size} domains)",
    )
    emit(text)
    by_condition = {r["condition"]: r for r in rows}
    assert by_condition["zbit remedy"]["leaked"] == 0
    assert by_condition["zbit remedy + MITM forcing Z=1"]["leaked"] > 0
    assert by_condition["txt remedy + MITM rewriting dlv=1"]["leaked"] > 0
    # Hardening helps for signed zones but cannot protect unsigned ones
    # (the paper's residual risk) — leakage drops but need not be zero.
    assert (
        by_condition["hardened txt + same MITM"]["leaked"]
        <= by_condition["txt remedy + MITM rewriting dlv=1"]["leaked"]
    )
