"""Extension: qname minimisation (RFC 7816) vs the DLV leak.

The paper's threat model cites qname minimisation as the measure that
reduces what *ancestor* servers observe.  This bench quantifies its
effect at every observation point — and shows that the DLV registry's
exposure is untouched: every look-aside query carries the full domain
regardless of how the original resolution was minimised.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import (
    LeakageExperiment,
    observer_exposures,
    standard_universe,
    standard_workload,
    universe_observers,
)
from repro.resolver import correct_bind_config


def run_comparison(size, filler_count):
    workload = standard_workload(size)
    rows = []
    for qmin in (False, True):
        universe = standard_universe(workload, filler_count=filler_count)
        config = correct_bind_config(qname_minimization=qmin)
        experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
        result = experiment.run(workload.names(size))
        exposures = {
            e.role: e
            for e in observer_exposures(
                result.capture, workload.names(size), universe_observers(universe)
            )
        }
        tld_exposed = sum(
            len(e.exposed_domains)
            for role, e in exposures.items()
            if role.startswith("tld:")
        )
        rows.append(
            {
                "qmin": "on" if qmin else "off",
                "root_exposed": len(exposures["root"].exposed_domains),
                "tld_exposed": tld_exposed,
                "registry_exposed": len(exposures["dlv-registry"].exposed_domains),
                "leaked": result.leakage.leaked_count,
            }
        )
    return rows


def test_qname_minimization(benchmark):
    size = int(os.environ.get("REPRO_QMIN_SIZE", "200"))
    rows = benchmark.pedantic(
        run_comparison, args=(size, 20000), rounds=1, iterations=1
    )
    text = format_table(
        ["qmin", "Root sees", "TLDs see", "DLV registry sees", "Case-2 leaked"],
        [
            (r["qmin"], r["root_exposed"], r["tld_exposed"], r["registry_exposed"], r["leaked"])
            for r in rows
        ],
        title=(
            f"RFC 7816 qname minimisation vs the DLV leak "
            f"({size} domains; 'sees' = distinct queried domains visible)"
        ),
    )
    emit(text)
    off, on = rows
    assert on["root_exposed"] == 0 < off["root_exposed"]
    assert on["registry_exposed"] > size // 3  # the leak survives qmin
