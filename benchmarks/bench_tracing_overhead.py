"""Tracing/metrics overhead: instrumentation must be free when off.

Three arms run the ``bench_substrate_perf`` full-resolution workload:

* **off**  — no telemetry attached (``tracer=None``/``metrics=None``,
  the default every experiment runs with);
* **noop** — :class:`~repro.core.tracing.NullTracer` and
  :class:`~repro.core.metrics.NullMetricsRegistry` attached (every
  emission point fires into a sink that discards it);
* **on**   — a real :class:`~repro.core.tracing.Tracer` and
  :class:`~repro.core.metrics.MetricsRegistry`.

The contract asserted here: the *off* arm pays at most 5 % relative to
itself across attachments — i.e. ``noop`` (which exercises every
``if tracer is not None`` guard plus the sink call) stays within 5 %
of ``off``.  Results land in ``BENCH_tracing.json`` at the repo root
so the perf trajectory is tracked across revisions.
"""

import json
import time
from pathlib import Path

from repro.core import (
    LeakageExperiment,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Tracer,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RRType
from repro.resolver import correct_bind_config

DOMAINS = 150
FILLER = 1000
REPEATS = 3
MAX_DISABLED_OVERHEAD = 0.05

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_tracing.json"


def _make_sinks(arm, universe):
    if arm == "off":
        return None, None
    if arm == "noop":
        return NullTracer(), NullMetricsRegistry()
    return Tracer(universe.clock), MetricsRegistry()


def _run_arm(arm):
    """One timed pass: fresh universe (untimed build), resolve every
    workload name once.  Identical work across arms by construction —
    the simulation is deterministic, only the sinks differ."""
    workload = standard_workload(DOMAINS)
    universe = standard_universe(workload, filler_count=FILLER)
    tracer, metrics = _make_sinks(arm, universe)
    universe.attach_telemetry(tracer=tracer, metrics=metrics)
    experiment = LeakageExperiment(
        universe, correct_bind_config(), ptr_fraction=0.0
    )
    names = workload.names(DOMAINS)
    start = time.perf_counter()
    for name in names:
        experiment.resolver.resolve(name, RRType.A)
    elapsed = time.perf_counter() - start
    if universe.tracer is not None:
        universe.tracer.drain()
    return elapsed


def test_tracing_overhead():
    timings = {}
    for arm in ("off", "noop", "on"):
        timings[arm] = min(_run_arm(arm) for _ in range(REPEATS))
    noop_overhead = timings["noop"] / timings["off"] - 1.0
    on_overhead = timings["on"] / timings["off"] - 1.0
    payload = {
        "workload": {"domains": DOMAINS, "filler": FILLER, "repeats": REPEATS},
        "seconds": {arm: round(value, 4) for arm, value in timings.items()},
        "overhead": {
            "noop_vs_off": round(noop_overhead, 4),
            "on_vs_off": round(on_overhead, 4),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print()
    print(f"off  {timings['off']:.3f}s")
    print(f"noop {timings['noop']:.3f}s ({noop_overhead:+.1%})")
    print(f"on   {timings['on']:.3f}s ({on_overhead:+.1%})")
    print(f"written to {RESULT_PATH.name}")
    assert noop_overhead <= MAX_DISABLED_OVERHEAD, (
        f"disabled-tracing overhead {noop_overhead:.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%}: the None-guards or null sinks "
        "grew a hot-path cost"
    )
