"""Population-scale replay bench: leak rate and memory vs user count.

Two measurements, recorded in ``BENCH_population.json``:

* **User sweep** — the same query budget replayed by 1/4/16/64
  concurrent users against one shared resolver.  More users means more
  distinct browsing profiles racing a cold shared cache, so the leak
  curve (Case-2 DLV queries per stub query) and the cache-hit rate
  shift with population — the scaling model DOC'd in docs/SCALING.md.
* **Scale arm** — one large replay (100k queries by default,
  ``REPRO_BENCH_REPLAY_QUERIES`` to resize) asserting the streaming
  contract: every query completes, and peak RSS stays under
  ``REPRO_BENCH_REPLAY_RSS_MB`` (default 800 MB) because no packet,
  arrival, or per-query record is ever retained — memory is flat in
  query count by construction.

The RSS bound is deliberately an *absolute* ceiling rather than a
delta: ``ru_maxrss`` is a lifetime high-water mark, so an absolute
bound is the only thing it can honestly assert — and a retained-packet
regression at 100k queries (hundreds of MB of Message objects) blows
through it immediately.
"""

import dataclasses
import json
import os
import resource
import sys
from pathlib import Path

from repro.core import ReplayParams, run_population_replay

USERS_SWEEP = (1, 4, 16, 64)
SWEEP_QUERIES = int(os.environ.get("REPRO_BENCH_REPLAY_SWEEP_QUERIES", "2000"))
SCALE_QUERIES = int(os.environ.get("REPRO_BENCH_REPLAY_QUERIES", "100000"))
SCALE_USERS = int(os.environ.get("REPRO_BENCH_REPLAY_USERS", "64"))
RSS_LIMIT_MB = float(os.environ.get("REPRO_BENCH_REPLAY_RSS_MB", "800"))
DOMAINS = 80
FILLER = 500
SEED = 2017

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_population.json"


def _peak_rss_mb() -> float:
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return peak / divisor


def _params(users: int, queries: int) -> ReplayParams:
    return ReplayParams(
        users=users,
        queries=queries,
        domains=DOMAINS,
        registry_filler=FILLER,
        window_seconds=600.0,
        max_concurrent=min(users, 64),
        seed=SEED,
    )


def _arm_payload(result) -> dict:
    overall = result.overall
    return {
        "queries": overall.queries,
        "failures": overall.failures,
        "simulated_seconds": round(result.simulated_seconds, 1),
        "simulated_qps": round(result.simulated_qps, 4),
        "replay_rate_qps": round(result.replay_rate, 1),
        "wall_seconds": round(result.wall_seconds, 3),
        "dlv_queries": overall.dlv_queries,
        "case1_queries": overall.case1_queries,
        "case2_queries": overall.case2_queries,
        "leaked_domains": len(overall.leaked_domains),
        "leak_rate": round(overall.leak_rate, 5),
        "cache_hit_rate": round(overall.cache_hit_rate, 5),
        "mean_latency": round(overall.mean_latency, 6),
        "peak_in_flight": result.scheduler.peak_active,
        "admission_queued": result.scheduler.queued,
        "threads_created": result.scheduler.threads_created,
        "windows": len(result.windows),
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def test_population_scale():
    sweep = {}
    for users in USERS_SWEEP:
        result = run_population_replay(_params(users, SWEEP_QUERIES))
        assert result.overall.queries == SWEEP_QUERIES
        assert result.scheduler.completed == SWEEP_QUERIES
        sweep[users] = _arm_payload(result)

    scale_params = _params(SCALE_USERS, SCALE_QUERIES)
    scale_result = run_population_replay(scale_params)
    scale = _arm_payload(scale_result)
    assert scale_result.overall.queries == SCALE_QUERIES
    assert scale_result.overall.sessions_completed == SCALE_QUERIES

    peak_rss = _peak_rss_mb()
    payload = {
        "sweep_queries": SWEEP_QUERIES,
        "users_sweep": {str(users): sweep[users] for users in USERS_SWEEP},
        "scale": {
            "users": SCALE_USERS,
            "params": dataclasses.asdict(scale_params),
            **scale,
        },
        "peak_rss_mb": round(peak_rss, 1),
        "rss_limit_mb": RSS_LIMIT_MB,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"{'users':>6} {'leak_rate':>10} {'cache_hit':>10} "
          f"{'sim_qps':>9} {'q/wall-s':>9} {'peak_rss':>9}")
    for users in USERS_SWEEP:
        arm = sweep[users]
        print(
            f"{users:>6} {arm['leak_rate']:>10.4f} "
            f"{arm['cache_hit_rate']:>10.2%} {arm['simulated_qps']:>9.3f} "
            f"{arm['replay_rate_qps']:>9.0f} {arm['peak_rss_mb']:>8.0f}M"
        )
    print(
        f"scale: {SCALE_QUERIES} queries / {SCALE_USERS} users -> "
        f"{scale['replay_rate_qps']:.0f} q/wall-s, "
        f"leak-rate {scale['leak_rate']:.4f}, "
        f"peak RSS {peak_rss:.0f} MB (limit {RSS_LIMIT_MB:.0f} MB)"
    )
    print(f"written to {RESULT_PATH.name}")

    # The flat-memory contract: a packet-retention (or arrival-list)
    # regression shows up here as hundreds of MB.
    assert peak_rss < RSS_LIMIT_MB, (
        f"peak RSS {peak_rss:.0f} MB exceeds {RSS_LIMIT_MB:.0f} MB — "
        "population replay is no longer streaming"
    )

    # More users on a cold shared cache leak at least as many distinct
    # domains as one user does.
    assert (
        sweep[USERS_SWEEP[-1]]["leaked_domains"]
        >= sweep[USERS_SWEEP[0]]["leaked_domains"]
    )
