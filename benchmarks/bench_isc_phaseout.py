"""Section 7.3.2: ISC's phase-out — the empty zone keeps collecting.

Paper: ISC removed all delegated zones but kept the (empty) service
running, so every remaining query is a Case-2 leak — the problem became
*more* severe, not less.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config


def run_phaseout(size, filler_count):
    workload = standard_workload(size)
    rows = []
    for label, kwargs in (
        ("populated", {"filler_count": filler_count}),
        ("phase-out (empty)", {"filler_count": 0, "registry_empty": True}),
    ):
        universe = standard_universe(workload, **kwargs)
        experiment = LeakageExperiment(universe, correct_bind_config())
        result = experiment.run(workload.names(size))
        leak = result.leakage
        rows.append(
            {
                "registry": label,
                "dlv_queries": leak.dlv_queries,
                "case1": leak.case1_queries,
                "case2": leak.case2_queries,
                "case2_fraction": leak.case2_fraction,
                "authenticated": result.authenticated_answers,
            }
        )
    return rows


def test_isc_phaseout(benchmark):
    size = int(os.environ.get("REPRO_PHASEOUT_SIZE", "300"))
    rows = benchmark.pedantic(
        run_phaseout, args=(size, 20000), rounds=1, iterations=1
    )
    text = format_table(
        ["Registry", "DLV queries", "Case-1", "Case-2", "Case-2 share", "AD answers"],
        [
            (r["registry"], r["dlv_queries"], r["case1"], r["case2"], f"{r['case2_fraction']:.1%}", r["authenticated"])
            for r in rows
        ],
        title="Section 7.3.2: ISC phase-out — every query becomes a leak",
    )
    emit(text)
    populated, empty = rows
    assert empty["case1"] == 0
    assert empty["case2_fraction"] == 1.0
    assert empty["authenticated"] <= populated["authenticated"]
