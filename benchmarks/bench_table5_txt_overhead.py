"""Table 5: overhead of the TXT-signalling remedy.

Paper ratios grow with N: response time 18.7→29.2 %, traffic volume
6.7→9.8 %, issued queries 10.8→19.7 % (100 → 100k domains).
"""

import os

from conftest import emit

from repro.analysis import table5_txt_overhead


def test_table5_txt_overhead(benchmark):
    sizes = tuple(
        int(part)
        for part in os.environ.get("REPRO_TABLE5_SIZES", "100,1000").split(",")
    )
    rows, text = benchmark.pedantic(
        table5_txt_overhead,
        kwargs={"sizes": sizes, "filler_count": 20000},
        rounds=1,
        iterations=1,
    )
    emit(text)
    for row in rows:
        assert 0.05 < row["time_ratio"] < 0.50
        assert 0.01 < row["traffic_ratio"] < 0.25
        assert 0.05 < row["queries_ratio"] < 0.40
