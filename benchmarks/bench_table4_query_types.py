"""Table 4: number of DNS queries by type per dataset size.

Paper (per 100 domains): A 467, AAAA 243, DNSKEY 32, DS 221, NS 36,
PTR 2.  The simulator reproduces the mix's shape: A dominates, DS and
AAAA follow, DNSKEY/NS/PTR are small.
"""

import os

from conftest import emit

from repro.analysis import table4_query_types


def test_table4_query_types(benchmark):
    sizes = tuple(
        int(part)
        for part in os.environ.get("REPRO_TABLE4_SIZES", "100,1000").split(",")
    )
    rows, text = benchmark.pedantic(
        table4_query_types,
        kwargs={"sizes": sizes, "filler_count": 20000},
        rounds=1,
        iterations=1,
    )
    emit(text)
    for row in rows:
        assert row["A"] > row["AAAA"]
        assert row["A"] > row["DS"]
        assert row["NS"] < row["AAAA"]
        assert row["PTR"] <= row["NS"]
