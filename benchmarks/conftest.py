"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the rows/series so the output can be compared against the publication
(and against EXPERIMENTS.md).  Scales are environment-tunable:

* ``REPRO_BENCH_SIZES``  — comma-separated sweep sizes for Figs 8/9
  (default ``100,1000,10000``; the paper goes to 1M, which works but
  takes long in pure Python).
* ``REPRO_BENCH_FILLER`` — DLV registry background population
  (default 60000, the calibrated value).
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.analysis import leakage_sweep
from repro.core import DEFAULT_REGISTRY_FILLER_COUNT


def _env_sizes() -> List[int]:
    raw = os.environ.get("REPRO_BENCH_SIZES", "100,1000,10000")
    return [int(part) for part in raw.split(",") if part]


def _env_filler() -> int:
    return int(
        os.environ.get("REPRO_BENCH_FILLER", str(DEFAULT_REGISTRY_FILLER_COUNT))
    )


@pytest.fixture(scope="session")
def bench_sizes() -> List[int]:
    return _env_sizes()


@pytest.fixture(scope="session")
def registry_filler_count() -> int:
    return _env_filler()


@pytest.fixture(scope="session")
def sweep_points(bench_sizes, registry_filler_count):
    """The Figs 8/9 leakage sweep, computed once per session."""
    return leakage_sweep(sizes=bench_sizes, filler_count=registry_filler_count)


def emit(text: str) -> None:
    """Print a bench's table/series under a visible delimiter."""
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)
