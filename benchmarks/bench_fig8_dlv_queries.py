"""Fig 8: number of DLV queries / leaked domains vs queried domains.

Paper: the leaked-domain count increases steadily but sub-linearly (84
at 100 domains; 67,838 at 1M) because aggressive negative caching
suppresses repeats within cached NSEC ranges.
"""

from conftest import emit

from repro.analysis import fig8_dlv_queries


def test_fig8_dlv_queries(benchmark, sweep_points):
    rows, text = benchmark.pedantic(
        fig8_dlv_queries, args=(sweep_points,), rounds=1, iterations=1
    )
    emit(text)
    counts = [row["leaked_domains"] for row in rows]
    assert counts == sorted(counts)
    assert all(
        row["dlv_queries"] >= row["leaked_domains"] for row in rows
    )
