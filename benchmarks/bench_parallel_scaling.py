"""Parallel-scaling bench: serial vs 2 and 4 workers, identical output.

One sharded workload (fixed seed, fixed shard count) runs on the
in-process executor and then on fork pools of 2 and 4 workers.  Two
things are measured and recorded in ``BENCH_parallel.json``:

* **speedup** — serial wall-clock over pooled wall-clock, per width;
* **merge overhead** — the share of the serial arm spent folding shard
  results rather than resolving (timed by merging the shard results
  again, standalone).

The byte-identity contract is asserted unconditionally: every arm's
merged fingerprint must equal the serial reference, whatever the
machine.  The speedup assertion, by contrast, only fires on hosts with
at least 4 CPUs — on a single-core container a fork pool legitimately
cannot beat the serial arm, and pretending otherwise would make the
bench flaky exactly where CI containers are smallest.
"""

import json
import multiprocessing
import time
from pathlib import Path

from repro.core import (
    MultiprocessingExecutor,
    SerialExecutor,
    merge_shard_results,
    plan_shards,
    result_fingerprint,
    run_shard,
    run_sharded_experiment,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config

DOMAINS = 120
FILLER = 1000
SHARDS = 4
SEED = 2016
WIDTHS = (2, 4)
MIN_SPEEDUP_AT_4 = 1.5
MIN_CPUS_FOR_SPEEDUP_ASSERT = 4

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _workload():
    workload = standard_workload(DOMAINS, seed=SEED)
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=SEED
    )
    return factory, workload.names(DOMAINS)


def _timed_run(factory, names, executor):
    start = time.perf_counter()
    result = run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        executor=executor,
    )
    return time.perf_counter() - start, result


def _merge_seconds(factory, names):
    """Standalone cost of the deterministic merge: rerun the fold over
    pre-computed shard results."""
    config = correct_bind_config()
    plan = plan_shards(names, SHARDS, SEED)
    shard_results = [
        (spec.index, run_shard(factory, config, spec)) for spec in plan
    ]
    start = time.perf_counter()
    merge_shard_results(shard_results)
    return time.perf_counter() - start


def test_parallel_scaling():
    factory, names = _workload()
    cpus = multiprocessing.cpu_count()

    serial_seconds, serial_result = _timed_run(
        factory, names, SerialExecutor()
    )
    reference = result_fingerprint(serial_result)

    arms = {}
    for width in WIDTHS:
        seconds, result = _timed_run(
            factory, names, MultiprocessingExecutor(width)
        )
        assert result_fingerprint(result) == reference, (
            f"{width}-worker merge diverged from the serial reference"
        )
        arms[width] = {
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 4),
            # Record the host honestly next to every speedup claim: a
            # width wider than the machine cannot demonstrate scaling,
            # whatever number it happened to produce.
            "cpus": cpus,
            "speedup_meaningful": width <= cpus,
        }

    merge_seconds = _merge_seconds(factory, names)
    payload = {
        "workload": {
            "domains": DOMAINS,
            "filler": FILLER,
            "shards": SHARDS,
            "seed": SEED,
        },
        "cpus": cpus,
        "serial_seconds": round(serial_seconds, 4),
        "workers": {str(width): arms[width] for width in WIDTHS},
        "merge_seconds": round(merge_seconds, 6),
        "merge_fraction_of_serial": round(merge_seconds / serial_seconds, 6),
        "byte_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"cpus: {cpus}")
    print(f"serial        {serial_seconds:.3f}s")
    for width in WIDTHS:
        arm = arms[width]
        note = "" if arm["speedup_meaningful"] else "  [width > cpus: not meaningful]"
        print(
            f"{width} workers     {arm['seconds']:.3f}s "
            f"({arm['speedup']:.2f}x){note}"
        )
    print(f"merge         {merge_seconds * 1000:.1f}ms "
          f"({merge_seconds / serial_seconds:.2%} of serial)")
    print(f"written to {RESULT_PATH.name}")

    # Merge must stay a rounding error next to the resolution work.
    assert merge_seconds < 0.25 * serial_seconds

    if cpus >= MIN_CPUS_FOR_SPEEDUP_ASSERT:
        assert arms[4]["speedup"] >= MIN_SPEEDUP_AT_4, (
            f"4-worker speedup {arms[4]['speedup']:.2f}x below "
            f"{MIN_SPEEDUP_AT_4}x on a {cpus}-cpu host"
        )
    else:
        print(
            f"speedup assertion skipped: {cpus} cpu(s) < "
            f"{MIN_CPUS_FOR_SPEEDUP_ASSERT}"
        )
