"""Extension: leak recurrence across negative-TTL windows.

The Fig 8/9 experiments query each domain once; real users revisit.
Aggressive-cache entries expire with their NSEC TTLs, so the same
browsing pattern leaks again every TTL window — the reason ISC's
"empty zone" phase-out (Section 7.3.2) kept receiving traffic from the
installed base indefinitely.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config


def run_rounds(size, filler_count, rounds, gap_seconds):
    workload = standard_workload(size)
    universe = standard_universe(workload, filler_count=filler_count)
    experiment = LeakageExperiment(
        universe, correct_bind_config(), ptr_fraction=0.0
    )
    rows = []
    for round_index in range(rounds):
        result = experiment.run(workload.names(size))
        rows.append(
            {
                "round": round_index,
                "sim_time_h": universe.clock.now / 3600.0,
                "dlv_queries": result.leakage.dlv_queries,
                "leaked": result.leakage.leaked_count,
            }
        )
        universe.clock.sleep_until(universe.clock.now + gap_seconds)
    return rows


def test_leak_recurrence(benchmark):
    size = int(os.environ.get("REPRO_RECURRENCE_SIZE", "150"))
    gap = float(os.environ.get("REPRO_RECURRENCE_GAP", "7200"))
    rows = benchmark.pedantic(
        run_rounds, args=(size, 10000, 3, gap), rounds=1, iterations=1
    )
    text = format_table(
        ["Round", "Sim time (h)", "DLV queries", "Leaked domains"],
        [
            (r["round"], f"{r['sim_time_h']:.1f}", r["dlv_queries"], r["leaked"])
            for r in rows
        ],
        title=(
            f"Leak recurrence: the same {size} domains re-queried every "
            f"{gap / 3600:.0f}h (caches expire between rounds)"
        ),
    )
    emit(text)
    assert rows[0]["leaked"] > 0
    # After the gap the caches have expired and the leak repeats.
    assert rows[1]["leaked"] > 0
    assert rows[2]["leaked"] > 0
