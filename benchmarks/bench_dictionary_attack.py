"""Section 6.2.4: dictionary attack against privacy-preserving DLV.

Paper: hashed queries resist an exhaustive dictionary (>350M domains,
unbounded subdomains) but a *targeted* dictionary (e.g. DNSSEC-enabled
domains) recovers its members.  The bench shows recovery rate vs
dictionary size and the hash-evaluation cost.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import (
    DictionaryAttack,
    LeakageExperiment,
    Remedy,
    coverage_curve,
    resolver_config_for,
    standard_universe,
    standard_workload,
)
from repro.resolver import correct_bind_config


def run_attack(size, filler_count):
    workload = standard_workload(size)
    universe = standard_universe(
        workload, filler_count=filler_count, registry_hashed=True
    )
    config = resolver_config_for(Remedy.HASHED, correct_bind_config())
    experiment = LeakageExperiment(universe, config, ptr_fraction=0.0)
    result = experiment.run(workload.names(size))
    attack = DictionaryAttack(universe.registry_origin, universe.registry_address)
    checkpoints = [size // 10, size // 2, size, size * 2]
    # Dictionary: the attacker's candidate list; beyond `size` it is
    # padded with decoys (names never queried).
    decoys = standard_workload(size * 2, seed=777).names(size * 2)
    dictionary = workload.names(size) + decoys[:size]
    rows = coverage_curve(attack, result.capture, dictionary, checkpoints)
    return result, rows


def test_dictionary_attack(benchmark):
    size = int(os.environ.get("REPRO_ATTACK_SIZE", "300"))
    result, rows = benchmark.pedantic(
        run_attack, args=(size, 10000), rounds=1, iterations=1
    )
    text = format_table(
        ["Dictionary size", "Observed digests", "Recovered", "Recovery rate"],
        [
            (r["dictionary_size"], r["observed"], r["recovered"], f"{r['recovery_rate']:.1%}")
            for r in rows
        ],
        title=(
            "Section 6.2.4: dictionary attack on hashed DLV "
            f"({size} domains queried; leaked plaintext domains: "
            f"{result.leakage.leaked_count})"
        ),
    )
    emit(text)
    assert result.leakage.leaked_count == 0  # names never leave in clear
    rates = [r["recovery_rate"] for r in rows]
    assert rates == sorted(rates)
    assert rates[-1] > 0.9  # a targeted dictionary wins
