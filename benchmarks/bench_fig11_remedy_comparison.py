"""Fig 11: standard DLV vs the TXT and Z-bit remedies, three metrics.

Paper: the TXT option incurs the highest overhead; the Z bit is minimal
because the signal rides in existing responses.
"""

import os

from conftest import emit

from repro.analysis import fig11_remedy_comparison


def test_fig11_remedy_comparison(benchmark):
    size = int(os.environ.get("REPRO_FIG11_SIZE", "300"))
    rows, text = benchmark.pedantic(
        fig11_remedy_comparison,
        kwargs={"size": size, "filler_count": 20000},
        rounds=1,
        iterations=1,
    )
    emit(text)
    by_option = {r["option"]: r for r in rows}
    assert by_option["TXT"]["time_s"] > by_option["DLV"]["time_s"]
    assert by_option["TXT"]["queries"] > by_option["Z bit"]["queries"]
    assert by_option["Z bit"]["time_s"] == by_option["DLV"]["time_s"]
    assert by_option["TXT"]["leaked"] == by_option["Z bit"]["leaked"] == 0
