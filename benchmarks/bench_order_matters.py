"""Section 5.1 "Order Matters": shuffled top-100 trials.

Paper: three shuffles of the same top-100 list leaked 82/84/77 domains.
In the deterministic simulator the count equals the number of touched
NSEC ranges (order-invariant) while the *identity* of leaked domains is
order-dependent; the bench reports both.
"""

from conftest import emit

from repro.analysis import format_table
from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config

TRIALS = 3
SIZE = 100


def run_trials(filler_count):
    workload = standard_workload(SIZE)
    rows = []
    leaked_sets = []
    for trial in range(TRIALS):
        universe = standard_universe(workload, filler_count=filler_count)
        experiment = LeakageExperiment(universe, correct_bind_config())
        names = workload.shuffled_names(SIZE, trial_seed=trial)
        result = experiment.run(names)
        leaked_sets.append(frozenset(result.leakage.leaked_domains))
        rows.append(
            {
                "trial": trial,
                "leaked": result.leakage.leaked_count,
                "proportion": result.leakage.leaked_proportion,
            }
        )
    overlap = len(frozenset.intersection(*leaked_sets))
    union = len(frozenset.union(*leaked_sets))
    return rows, overlap, union


def test_order_matters(benchmark, registry_filler_count):
    rows, overlap, union = benchmark.pedantic(
        run_trials, args=(registry_filler_count,), rounds=1, iterations=1
    )
    text = format_table(
        ["Trial", "Leaked", "Proportion"],
        [(r["trial"], r["leaked"], f"{r['proportion']:.0%}") for r in rows],
        title=(
            "Section 5.1 'Order Matters': shuffled top-100 trials "
            f"(paper: 82/84/77) — identical domains across trials: "
            f"{overlap}/{union}"
        ),
    )
    emit(text)
    assert all(60 <= r["leaked"] <= 95 for r in rows)
    assert overlap < union  # shuffling changes which domains leak
