"""Section 7.3.1: leak granularity behind shared vs dedicated resolvers.

Paper: "if queries are sent by a public recursive resolver on behalf of
multiple stubs, the DLV server will not be able to map the query to the
actual querying stub" — though correlation attacks may re-link them.
The bench quantifies the baseline: sources observed, attributable
users, aggregate exposure, and the cache-sharing suppression bonus.
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import make_profiles, run_population, standard_workload
from repro.core.setup import EXPERIMENT_MODULUS_BITS
from repro.resolver import correct_bind_config
from repro.workloads import UniverseParams


def run_both(users, per_user, filler):
    workload = standard_workload(300)
    profiles = make_profiles(workload, user_count=users, domains_per_user=per_user)
    params = UniverseParams(
        modulus_bits=EXPERIMENT_MODULUS_BITS,
        registry_filler=tuple(workload.registry_filler(filler)),
    )
    rows = []
    for shared in (False, True):
        result = run_population(
            workload.domains, profiles, correct_bind_config(), shared, params
        )
        rows.append(
            {
                "mode": "shared resolver" if shared else "dedicated resolvers",
                "sources": result.observed_sources,
                "attributable": result.attributable_users,
                "aggregate": result.aggregate_exposed,
                "dlv_queries": result.total_dlv_queries,
            }
        )
    return rows


def test_population_granularity(benchmark):
    users = int(os.environ.get("REPRO_POP_USERS", "8"))
    per_user = int(os.environ.get("REPRO_POP_DOMAINS", "25"))
    rows = benchmark.pedantic(
        run_both, args=(users, per_user, 10000), rounds=1, iterations=1
    )
    text = format_table(
        ["Mode", "Sources seen", "Attributable users", "Aggregate domains", "DLV queries"],
        [
            (r["mode"], r["sources"], r["attributable"], r["aggregate"], r["dlv_queries"])
            for r in rows
        ],
        title=(
            f"Section 7.3.1: {users} users x {per_user} domains, "
            "shared vs dedicated resolvers"
        ),
    )
    emit(text)
    dedicated, shared = rows
    assert shared["sources"] == 1
    assert shared["attributable"] == 0
    assert dedicated["attributable"] == users
    assert shared["dlv_queries"] <= dedicated["dlv_queries"]
