"""Table 2: default-configuration variations per installation method."""

from conftest import emit

from repro.analysis import table2_config_variations


def test_table2_config_variations(benchmark):
    rows, text = benchmark.pedantic(
        table2_config_variations, rounds=1, iterations=1
    )
    emit(text)
    verdicts = {r["installer"]: r["arm_compliant"] for r in rows}
    # The paper's finding: none of the defaults follow the ARM.
    assert not any(verdicts.values())
