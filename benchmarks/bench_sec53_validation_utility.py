"""Section 5.3: validation utility of the DLV registry.

Paper: for Alexa's top 10k, fewer than 1.2 % of DLV queries received
"No error" — ~98.8 % of look-aside traffic was pure leakage.
"""

import os

from conftest import emit

from repro.core import LeakageExperiment, standard_universe, standard_workload
from repro.resolver import correct_bind_config


def run_utility(size, filler_count):
    workload = standard_workload(size)
    universe = standard_universe(workload, filler_count=filler_count)
    experiment = LeakageExperiment(universe, correct_bind_config())
    return experiment.run(workload.names(size))


def test_validation_utility(benchmark, registry_filler_count):
    size = int(os.environ.get("REPRO_UTILITY_SIZE", "2000"))
    result = benchmark.pedantic(
        run_utility, args=(size, registry_filler_count), rounds=1, iterations=1
    )
    leak = result.leakage
    emit(
        f"Section 5.3 validation utility ({size} domains):\n"
        f"  DLV queries:            {leak.dlv_queries}\n"
        f"  'No error' responses:   {leak.noerror_responses} "
        f"({leak.utility_fraction:.2%} of DLV queries; paper: <1.2%)\n"
        f"  'No such name':         {leak.nxdomain_responses}\n"
        f"  leakage share (case-2): {leak.case2_fraction:.2%} "
        f"(paper: ~98.8%)"
    )
    assert leak.utility_fraction < 0.05
    assert leak.case2_fraction > 0.90
