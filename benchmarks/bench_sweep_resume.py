"""Store bench: what crash-safety costs, and what resume saves.

Three arms over the same sharded workload, results in
``BENCH_store.json``:

* **plain** — ``run_sharded_experiment`` with no store (the baseline);
* **cold**  — ``run_stored_sweep`` against an empty store: the
  baseline plus commit overhead (pickle + digest + fsync + rename);
* **warm**  — the same stored sweep again: every cell is a verified
  reuse, no resolution happens at all.

Two things are asserted unconditionally: all three arms fingerprint
identically (the store never changes a byte of output), and the warm
arm actually reused every cell.  The warm-vs-plain speedup is recorded
but only asserted loosely (≥1x) — the win is already decisive at this
size and grows with the workload, and a tight bound would make the
bench flaky on the smallest CI containers.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.core import (
    ResultStore,
    SerialExecutor,
    result_fingerprint,
    run_sharded_experiment,
    run_stored_sweep,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config

DOMAINS = 40
FILLER = 400
SHARDS = 4
SEED = 2016

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _workload():
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=SEED
    )
    names = standard_workload(DOMAINS, seed=SEED).names(DOMAINS)
    return factory, names


def test_store_cold_vs_warm():
    factory, names = _workload()

    # Untimed warm-up: fill the process-global hot-path caches so the
    # arms measure store mechanics, not who ran first (see
    # docs/PERFORMANCE.md for what those caches memoise).
    run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        executor=SerialExecutor(),
    )

    start = time.perf_counter()
    plain = run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        executor=SerialExecutor(),
    )
    plain_seconds = time.perf_counter() - start
    reference = result_fingerprint(plain)

    root = tempfile.mkdtemp(prefix="bench-store-")

    start = time.perf_counter()
    cold = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        store=ResultStore(root),
    )
    cold_seconds = time.perf_counter() - start
    assert result_fingerprint(cold.result) == reference
    assert cold.cells_rerun == SHARDS and cold.cells_reused == 0

    start = time.perf_counter()
    warm = run_stored_sweep(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        store=ResultStore(root),
    )
    warm_seconds = time.perf_counter() - start
    assert result_fingerprint(warm.result) == reference
    assert warm.cells_reused == SHARDS and warm.cells_rerun == 0
    assert plain_seconds / warm_seconds >= 1.0, (
        "an all-reuse sweep should never be slower than resolving"
    )

    store_bytes = sum(
        path.stat().st_size for path in Path(root).glob("*/*.cell")
    )
    payload = {
        "workload": {
            "domains": DOMAINS,
            "filler": FILLER,
            "shards": SHARDS,
            "seed": SEED,
        },
        "plain_seconds": round(plain_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "commit_overhead": round(cold_seconds / plain_seconds, 4),
        "warm_speedup": round(plain_seconds / warm_seconds, 2),
        "store_bytes": store_bytes,
        "bytes_per_cell": store_bytes // SHARDS,
        "byte_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(f"plain (no store)  {plain_seconds:.3f}s")
    print(f"cold  (commit)    {cold_seconds:.3f}s "
          f"({cold_seconds / plain_seconds:.2f}x of plain)")
    print(f"warm  (all reuse) {warm_seconds:.3f}s "
          f"({plain_seconds / warm_seconds:.1f}x speedup)")
    print(f"store size        {store_bytes} bytes "
          f"({store_bytes // SHARDS} per cell)")
    print(f"written to {RESULT_PATH.name}")
