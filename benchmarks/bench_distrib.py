"""Distributed executor bench: what the lease discipline costs.

Three arms over the same sharded workload, results in
``BENCH_distrib.json``:

* **serial**     — ``SerialExecutor``: the single-process baseline;
* **pool**       — ``MultiprocessingExecutor`` (2 workers): the
  fork-pool ceiling with no coordination files at all;
* **distributed** — ``DistributedExecutor`` (2 workers): the same
  fan-out, but every cell goes through claim → heartbeat → execute →
  commit → release against an on-disk board.

Asserted unconditionally: all three arms fingerprint identically (the
lease layer never changes a byte of output), and the distributed arm
leaked no lease files.  The **lease overhead** — the measured cost of
one claim/renew/release cycle times the cell count, as a fraction of
the distributed arm's wall clock — is asserted under 5%: coordination
is file metadata, resolution is the work.  The pool-vs-distributed
wall-clock ratio is recorded but only asserted loosely (≤3x), because
tiny CI workloads amortise nothing.
"""

import json
import tempfile
import time
from pathlib import Path

from repro.core import (
    DistributedExecutor,
    MultiprocessingExecutor,
    SerialExecutor,
    claim_cell,
    release_lease,
    renew_lease,
    result_fingerprint,
    run_sharded_experiment,
    standard_universe_factory,
    standard_workload,
)
from repro.resolver import correct_bind_config

DOMAINS = 40
FILLER = 400
SHARDS = 4
WORKERS = 2
SEED = 2016
LEASE_CYCLES = 100

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_distrib.json"


def _run(executor):
    factory = standard_universe_factory(
        DOMAINS, filler_count=FILLER, workload_seed=SEED
    )
    names = standard_workload(DOMAINS, seed=SEED).names(DOMAINS)
    start = time.perf_counter()
    result = run_sharded_experiment(
        factory,
        correct_bind_config(),
        names,
        seed=SEED,
        shards=SHARDS,
        executor=executor,
    )
    return result, time.perf_counter() - start


def _lease_cycle_seconds(root):
    """Mean wall clock of one claim → renew → release cycle — the
    per-cell coordination cost (3 fsync'd metadata writes)."""
    lease_dir = Path(root) / "leases"
    lease_dir.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()
    for index in range(LEASE_CYCLES):
        path = lease_dir / f"bench-{index}.lease"
        claimed = claim_cell(path, f"cell-{index}", "bench", ttl=5.0)
        assert claimed is not None
        renew_lease(path, claimed.lease)
        release_lease(path, claimed.lease)
    return (time.perf_counter() - start) / LEASE_CYCLES


def test_distributed_vs_pool():
    # Untimed warm-up: fill the process-global hot-path caches so the
    # arms measure executors, not who ran first.
    _run(SerialExecutor())

    serial, serial_seconds = _run(SerialExecutor())
    reference = result_fingerprint(serial)

    pool, pool_seconds = _run(MultiprocessingExecutor(workers=WORKERS))
    assert result_fingerprint(pool) == reference

    board_root = tempfile.mkdtemp(prefix="bench-distrib-")
    distributed, distributed_seconds = _run(
        DistributedExecutor(workers=WORKERS, root=board_root, ttl=5.0)
    )
    assert result_fingerprint(distributed) == reference
    assert list(Path(board_root).glob("leases/*.lease")) == []

    cycle_seconds = _lease_cycle_seconds(board_root)
    lease_overhead = (cycle_seconds * SHARDS) / distributed_seconds
    assert lease_overhead < 0.05, (
        f"lease coordination should be <5% of the sweep, measured "
        f"{lease_overhead:.2%} ({cycle_seconds * 1e3:.2f}ms/cycle)"
    )
    ratio = distributed_seconds / pool_seconds
    assert ratio <= 3.0, (
        "the distributed arm should stay in the pool's ballpark "
        f"({ratio:.2f}x)"
    )

    payload = {
        "workload": {
            "domains": DOMAINS,
            "filler": FILLER,
            "shards": SHARDS,
            "workers": WORKERS,
            "seed": SEED,
        },
        "serial_seconds": round(serial_seconds, 4),
        "pool_seconds": round(pool_seconds, 4),
        "distributed_seconds": round(distributed_seconds, 4),
        "pool_speedup": round(serial_seconds / pool_seconds, 2),
        "distributed_speedup": round(serial_seconds / distributed_seconds, 2),
        "distributed_vs_pool": round(ratio, 4),
        "lease_cycle_ms": round(cycle_seconds * 1e3, 4),
        "lease_overhead_fraction": round(lease_overhead, 6),
        "byte_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                           encoding="utf-8")

    print()
    print(f"serial       {serial_seconds:.3f}s")
    print(f"pool         {pool_seconds:.3f}s "
          f"({serial_seconds / pool_seconds:.2f}x of serial)")
    print(f"distributed  {distributed_seconds:.3f}s "
          f"({distributed_seconds / pool_seconds:.2f}x of pool)")
    print(f"lease cycle  {cycle_seconds * 1e3:.2f}ms "
          f"({lease_overhead:.2%} of the distributed sweep)")
    print(f"written to {RESULT_PATH.name}")
