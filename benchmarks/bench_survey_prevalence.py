"""Section 5.2: the DNS-OARC operator survey and prevalence modelling.

Paper: 56 respondents — 30.35 % package defaults, 8.9 % manual
defaults, 60.7 % own configuration; 62.5 % use ISC's DLV registry.
"""

from conftest import emit

from repro.analysis import (
    format_table,
    model_population,
    prevalence_estimate,
    survey_breakdown,
)


def run_survey():
    breakdown = survey_breakdown()
    population = model_population()
    estimate = prevalence_estimate()
    return breakdown, population, estimate


def test_survey_prevalence(benchmark):
    breakdown, population, estimate = benchmark.pedantic(
        run_survey, rounds=1, iterations=1
    )
    text = format_table(
        ["Answer", "Respondents", "Share"],
        [(r["answer"], r["respondents"], f"{r['share']:.1%}") for r in breakdown],
        title="DNS-OARC 2015 survey (published figures)",
    )
    risky = sum(1 for r in population if r.leaks_everything())
    text += (
        f"\n\nModelled population of {len(population)} resolvers:\n"
        f"  DLV-enabled:          {estimate['dlv_enabled_fraction']:.1%}\n"
        f"  leak-everything risk: {estimate['leaks_everything_fraction']:.1%} "
        f"({risky} resolvers with look-aside on and no usable root anchor)"
    )
    emit(text)
    assert breakdown[0]["respondents"] == 17
    assert estimate["isc_dlv_share_published"] == 0.625
    assert 0 < estimate["leaks_everything_fraction"] < 0.5
