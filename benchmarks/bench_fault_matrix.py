"""Chaos matrix: fault scenarios × DLV degradation policies.

Section 8.4 reports DLV registry outages; this bench sweeps scripted
fault plans (fault-free, SERVFAIL outage, black-hole outage) against
the resolver's degradation policies and reports, per cell:

* availability — the stub-visible SERVFAIL rate;
* latency — mean response time over the workload;
* registry exposure — Case-2 queries the registry operator (or whoever
  answers its address) could observe while degraded.

The policy spread is the point: a strict resolver trades availability
for correctness, the insecure fallback keeps answering but keeps
leaking, and hold-down / auto-disable bound the exposure window.
"""

from conftest import emit

from repro.analysis import format_table
from repro.core import (
    registry_outage_scenario,
    run_chaos_matrix,
    standard_universe,
    standard_workload,
)
from repro.dnscore import RCode
from repro.resolver import DlvOutagePolicy, correct_bind_config

#: Kept deliberately small: the matrix builds a fresh universe per cell.
DOMAIN_COUNT = 60
FILLER_COUNT = 1_000


def run_matrix():
    workload = standard_workload(DOMAIN_COUNT)
    names = [spec.name for spec in workload.domains]

    def factory():
        return standard_universe(workload, filler_count=FILLER_COUNT)

    configs = {
        "insecure-fallback": correct_bind_config(),
        "fallback+holddown": correct_bind_config(dlv_fail_holddown=300.0),
        "strict-servfail": correct_bind_config(
            dlv_outage_policy=DlvOutagePolicy.SERVFAIL
        ),
        "disable-after-3": correct_bind_config(
            dlv_outage_policy=DlvOutagePolicy.DISABLE_AFTER_N,
            dlv_disable_threshold=3,
        ),
    }
    scenarios = {
        "fault-free": None,
        "servfail-outage": registry_outage_scenario(rcode=RCode.SERVFAIL),
        "black-hole": registry_outage_scenario(rcode=None),
    }
    return run_chaos_matrix(factory, names, scenarios, configs)


def test_fault_matrix(benchmark):
    reports = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    text = format_table(
        ["Scenario", "Policy", "SERVFAIL", "Mean RT (ms)", "Case-2", "Skipped"],
        [
            (
                r.scenario,
                r.policy,
                f"{r.servfail_rate:.1%}",
                f"{r.mean_response_time * 1000:.0f}",
                r.case2_queries,
                r.lookaside_skipped,
            )
            for r in reports
        ],
        title="Chaos matrix: registry fault scenarios × degradation "
        f"policies ({DOMAIN_COUNT} domains)",
    )
    emit(text)
    cells = {(r.scenario, r.policy): r for r in reports}

    # Fault-free: every policy behaves identically (no degradation path
    # is ever taken), so the resilience knobs are free when healthy.
    healthy = [r for r in reports if r.scenario == "fault-free"]
    assert len({(r.noerror, r.servfail, r.case2_queries) for r in healthy}) == 1

    # SERVFAIL outage: the host still sees queries, so the policies
    # produce three *distinct* exposure levels — unbounded (fallback),
    # one-per-holddown-window, and bounded by the disable threshold.
    outage = {p: cells[("servfail-outage", p)] for p in (
        "insecure-fallback", "fallback+holddown", "disable-after-3"
    )}
    exposures = [r.case2_queries for r in outage.values()]
    assert len(set(exposures)) == 3
    assert (
        outage["fallback+holddown"].case2_queries
        < outage["disable-after-3"].case2_queries
        < outage["insecure-fallback"].case2_queries
    )
    # Strict mode buys correctness with availability.
    assert (
        cells[("servfail-outage", "strict-servfail")].servfail
        > cells[("servfail-outage", "insecure-fallback")].servfail
    )

    # Black hole: dropped queries never reach the registry operator, so
    # the observable Case-2 exposure collapses to zero for every policy.
    assert all(
        r.case2_queries == 0 for r in reports if r.scenario == "black-hole"
    )
