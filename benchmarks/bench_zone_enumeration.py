"""Section 7.3: NSEC zone enumeration of the DLV registry.

Paper: "An attacker can gain knowledge of all domains in the zone by
sending DNSSEC validation queries of random domains" — with NSEC the
entire registry population can be walked; NSEC3 prevents it (at the
cost of aggressive caching, see bench_nsec3_tradeoff).
"""

import os

from conftest import emit

from repro.analysis import format_table
from repro.core import NsecZoneWalker, standard_universe, standard_workload
from repro.servers import DenialMode


def run_walks(filler_count):
    workload = standard_workload(10)
    rows = []
    for denial in (DenialMode.NSEC, DenialMode.NSEC3):
        universe = standard_universe(
            workload, filler_count=filler_count, registry_denial=denial
        )
        walker = NsecZoneWalker(
            universe.network, universe.registry_address, universe.registry_origin
        )
        result = walker.walk(max_queries=filler_count * 2 + 100)
        rows.append(
            {
                "denial": denial.value,
                "zone_size": universe.registry_zone.deposit_count(),
                "enumerated": len(result.enumerated_domains(universe.registry_origin)),
                "queries": result.queries_sent,
                "complete": result.complete,
            }
        )
    return rows


def test_zone_enumeration(benchmark):
    filler = int(os.environ.get("REPRO_ENUM_FILLER", "3000"))
    rows = benchmark.pedantic(run_walks, args=(filler,), rounds=1, iterations=1)
    text = format_table(
        ["Denial", "Zone size", "Enumerated", "Queries sent", "Complete walk"],
        [
            (r["denial"], r["zone_size"], r["enumerated"], r["queries"], "yes" if r["complete"] else "no")
            for r in rows
        ],
        title="Section 7.3: enumerating the registry via its NSEC chain",
    )
    emit(text)
    nsec, nsec3 = rows
    assert nsec["complete"] and nsec["enumerated"] == nsec["zone_size"]
    assert nsec["queries"] <= nsec["zone_size"] + 2
    assert not nsec3["complete"] and nsec3["enumerated"] == 0
